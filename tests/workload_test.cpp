// Tests for the workload module: growth-model calibration, generator
// structural properties (phases, attack dummies, hubs, call cascades) and
// trace round-tripping.
#include <gtest/gtest.h>

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "eth/gas.hpp"
#include "util/check.hpp"
#include "workload/generator.hpp"
#include "workload/growth_model.hpp"
#include "workload/analysis.hpp"
#include "workload/import.hpp"
#include "workload/presets.hpp"
#include "workload/trace_io.hpp"

namespace ethshard::workload {
namespace {

using util::Timestamp;

// ----------------------------------------------------------- GrowthModel

TEST(GrowthModel, MonotoneNondecreasing) {
  GrowthModel m;
  double prev = -1;
  for (Timestamp t = m.genesis; t <= m.end; t += 7 * util::kDay) {
    const double v = m.cumulative_interactions(t);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(GrowthModel, StartsNearZero) {
  GrowthModel m;
  EXPECT_DOUBLE_EQ(m.cumulative_interactions(m.genesis), 0.0);
  EXPECT_LT(m.cumulative_interactions(m.genesis + util::kDay), 1000.0);
}

TEST(GrowthModel, ReachesAttackScale) {
  GrowthModel m;
  const double at_attack = m.cumulative_interactions(m.attack_start);
  EXPECT_GT(at_attack, 5e6);
  EXPECT_LT(at_attack, 5e7);
}

TEST(GrowthModel, AttackAddsOrderOfMagnitudeJump) {
  GrowthModel m;
  const double before = m.cumulative_interactions(m.attack_start);
  const double after = m.cumulative_interactions(m.attack_end);
  EXPECT_GT(after, before + 0.9 * m.attack_interactions);
}

TEST(GrowthModel, HitsEndTarget) {
  GrowthModel m;
  EXPECT_NEAR(m.cumulative_interactions(m.end), m.end_target,
              0.05 * m.end_target);
}

TEST(GrowthModel, ExponentialPhaseIsExponential) {
  // Ratio over equal spans must be roughly constant in the first phase.
  GrowthModel m;
  const Timestamp t0 = m.genesis + 120 * util::kDay;
  const Timestamp t1 = t0 + 60 * util::kDay;
  const Timestamp t2 = t1 + 60 * util::kDay;
  const double r1 =
      m.cumulative_interactions(t1) / m.cumulative_interactions(t0);
  const double r2 =
      m.cumulative_interactions(t2) / m.cumulative_interactions(t1);
  EXPECT_NEAR(r1, r2, 0.35 * r1);
}

TEST(GrowthModel, ClampsOutsideRange) {
  GrowthModel m;
  EXPECT_DOUBLE_EQ(m.cumulative_interactions(m.genesis - util::kWeek), 0.0);
  EXPECT_DOUBLE_EQ(m.cumulative_interactions(m.end + util::kWeek),
                   m.cumulative_interactions(m.end));
}

TEST(GrowthModel, InAttackWindow) {
  GrowthModel m;
  EXPECT_FALSE(m.in_attack(m.attack_start - 1));
  EXPECT_TRUE(m.in_attack(m.attack_start));
  EXPECT_TRUE(m.in_attack(m.attack_end - 1));
  EXPECT_FALSE(m.in_attack(m.attack_end));
}

// -------------------------------------------------------------- Generator

GeneratorConfig small_config(double scale = 0.002, std::uint64_t seed = 7) {
  GeneratorConfig cfg;
  cfg.scale = scale;
  cfg.seed = seed;
  return cfg;
}

class GeneratedHistoryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    history_ = new History(
        EthereumHistoryGenerator(small_config()).generate());
  }
  static void TearDownTestSuite() {
    delete history_;
    history_ = nullptr;
  }
  static const History& history() { return *history_; }

 private:
  static History* history_;
};

History* GeneratedHistoryTest::history_ = nullptr;

TEST_F(GeneratedHistoryTest, ChainValidates) {
  EXPECT_TRUE(history().chain.validate());
}

TEST_F(GeneratedHistoryTest, VolumeTracksModelTimesScale) {
  const HistoryStats st = stats_of(history());
  const GrowthModel model;
  const double expect = 0.002 * model.cumulative_interactions(model.end);
  EXPECT_NEAR(static_cast<double>(st.calls), expect, 0.15 * expect);
}

TEST_F(GeneratedHistoryTest, TimestampsSpanTheStudyPeriod) {
  const auto& blocks = history().chain.blocks();
  ASSERT_FALSE(blocks.empty());
  EXPECT_LT(blocks.front().timestamp,
            util::genesis_time() + 90 * util::kDay);
  EXPECT_GT(blocks.back().timestamp,
            util::study_end_time() - 7 * util::kDay);
}

TEST_F(GeneratedHistoryTest, AllTransactionsWellFormed) {
  for (const eth::Block& b : history().chain.blocks())
    for (const eth::Transaction& tx : b.transactions)
      ASSERT_TRUE(tx.well_formed());
}

TEST_F(GeneratedHistoryTest, CallEndpointsAreRegistered) {
  const auto& reg = history().accounts;
  for (const eth::Block& b : history().chain.blocks())
    for (const eth::Transaction& tx : b.transactions)
      for (const eth::Call& c : tx.calls) {
        ASSERT_TRUE(reg.contains(c.from));
        ASSERT_TRUE(reg.contains(c.to));
      }
}

TEST_F(GeneratedHistoryTest, ContractCallsTargetContracts) {
  const auto& reg = history().accounts;
  for (const eth::Block& b : history().chain.blocks())
    for (const eth::Transaction& tx : b.transactions)
      for (const eth::Call& c : tx.calls) {
        if (c.kind != eth::CallKind::kTransfer)
          ASSERT_EQ(reg.info(c.to).kind, eth::AccountKind::kContract);
        else
          ASSERT_EQ(reg.info(c.to).kind,
                    eth::AccountKind::kExternallyOwned);
      }
}

TEST_F(GeneratedHistoryTest, SendersAreExternallyOwned) {
  const auto& reg = history().accounts;
  for (const eth::Block& b : history().chain.blocks())
    for (const eth::Transaction& tx : b.transactions)
      ASSERT_EQ(reg.info(tx.sender).kind,
                eth::AccountKind::kExternallyOwned);
}

TEST_F(GeneratedHistoryTest, AttackMintsDummiesThatNeverReturn) {
  // Accounts created during the attack window must be (a) numerous and
  // (b) overwhelmingly touched exactly once (the paper's dummy accounts).
  const auto& reg = history().accounts;
  std::unordered_map<eth::AccountId, int> touches;
  for (const eth::Block& b : history().chain.blocks())
    for (const eth::Transaction& tx : b.transactions)
      for (const eth::Call& c : tx.calls) {
        ++touches[c.from];
        ++touches[c.to];
      }

  std::uint64_t attack_created = 0;
  std::uint64_t attack_single_touch = 0;
  for (const eth::AccountInfo& info : reg.all()) {
    if (info.kind != eth::AccountKind::kExternallyOwned) continue;
    if (info.created_at < util::attack_start_time() ||
        info.created_at >= util::attack_end_time())
      continue;
    ++attack_created;
    if (touches[info.id] <= 1) ++attack_single_touch;
  }
  ASSERT_GT(attack_created, 1000u);
  EXPECT_GT(static_cast<double>(attack_single_touch) /
                static_cast<double>(attack_created),
            0.75);
}

TEST_F(GeneratedHistoryTest, GraphHasHubs) {
  // Preferential attachment must produce high-degree vertices.
  std::unordered_map<eth::AccountId, std::uint64_t> degree;
  for (const eth::Block& b : history().chain.blocks())
    for (const eth::Transaction& tx : b.transactions)
      for (const eth::Call& c : tx.calls) {
        ++degree[c.from];
        ++degree[c.to];
      }
  std::uint64_t max_deg = 0;
  double total = 0;
  for (const auto& [id, d] : degree) {
    max_deg = std::max(max_deg, d);
    total += static_cast<double>(d);
  }
  const double mean = total / static_cast<double>(degree.size());
  EXPECT_GT(static_cast<double>(max_deg), 50.0 * mean);
}

TEST_F(GeneratedHistoryTest, InternalCallCascadesExist) {
  std::uint64_t multi_call_txs = 0;
  std::uint64_t txs = 0;
  for (const eth::Block& b : history().chain.blocks())
    for (const eth::Transaction& tx : b.transactions) {
      ++txs;
      if (tx.calls.size() > 1) ++multi_call_txs;
    }
  EXPECT_GT(multi_call_txs, txs / 20);
}

TEST_F(GeneratedHistoryTest, ArchetypesAreAssigned) {
  std::uint64_t tokens = 0;
  std::uint64_t exchanges = 0;
  std::uint64_t icos = 0;
  std::uint64_t generic = 0;
  for (const eth::AccountInfo& info : history().accounts.all()) {
    if (info.kind != eth::AccountKind::kContract) {
      ASSERT_EQ(info.archetype, eth::ContractArchetype::kGeneric);
      continue;
    }
    switch (info.archetype) {
      case eth::ContractArchetype::kToken: ++tokens; break;
      case eth::ContractArchetype::kExchange: ++exchanges; break;
      case eth::ContractArchetype::kIco: ++icos; break;
      case eth::ContractArchetype::kGeneric: ++generic; break;
    }
  }
  EXPECT_GT(tokens, 0u);
  EXPECT_GT(exchanges, 0u);
  EXPECT_GT(icos, 0u);
  EXPECT_GT(generic, tokens);  // generic stays the majority
}

TEST_F(GeneratedHistoryTest, IcosOnlyAppearAfterAttack) {
  for (const eth::AccountInfo& info : history().accounts.all())
    if (info.archetype == eth::ContractArchetype::kIco) {
      EXPECT_GE(info.created_at, util::attack_end_time());
    }
}

TEST_F(GeneratedHistoryTest, IcoTrafficDiesAfterLifetime) {
  // Every ICO's incoming calls must cluster inside its hot window;
  // afterwards the crowdsale goes silent (the pattern that rewards
  // threshold-triggered repartitioning).
  std::unordered_map<eth::AccountId, std::uint64_t> in_window;
  std::unordered_map<eth::AccountId, std::uint64_t> after_window;
  const auto& reg = history().accounts;
  const util::Timestamp lifetime = 3 * util::kWeek;  // config default
  for (const eth::Block& b : history().chain.blocks())
    for (const eth::Transaction& tx : b.transactions)
      for (const eth::Call& c : tx.calls) {
        if (!reg.contains(c.to) ||
            reg.info(c.to).archetype != eth::ContractArchetype::kIco)
          continue;
        const util::Timestamp hot_end =
            reg.info(c.to).created_at + 2 * lifetime;
        if (b.timestamp <= hot_end)
          ++in_window[c.to];
        else
          ++after_window[c.to];
      }
  std::uint64_t in = 0;
  std::uint64_t after = 0;
  for (const auto& [id, n] : in_window) in += n;
  for (const auto& [id, n] : after_window) after += n;
  ASSERT_GT(in, 0u);
  EXPECT_LT(static_cast<double>(after), 0.05 * static_cast<double>(in));
}

TEST_F(GeneratedHistoryTest, ExchangesAreHubs) {
  std::unordered_map<eth::AccountId, std::uint64_t> degree;
  for (const eth::Block& b : history().chain.blocks())
    for (const eth::Transaction& tx : b.transactions)
      for (const eth::Call& c : tx.calls) ++degree[c.to];

  double exchange_total = 0;
  std::uint64_t exchange_count = 0;
  double contract_total = 0;
  std::uint64_t contract_count = 0;
  for (const eth::AccountInfo& info : history().accounts.all()) {
    if (info.kind != eth::AccountKind::kContract) continue;
    const double d = static_cast<double>(degree[info.id]);
    contract_total += d;
    ++contract_count;
    if (info.archetype == eth::ContractArchetype::kExchange) {
      exchange_total += d;
      ++exchange_count;
    }
  }
  ASSERT_GT(exchange_count, 0u);
  ASSERT_GT(contract_count, exchange_count);
  EXPECT_GT(exchange_total / static_cast<double>(exchange_count),
            3.0 * contract_total / static_cast<double>(contract_count));
}

TEST(Generator, DeterministicForSeed) {
  const History a =
      EthereumHistoryGenerator(small_config(0.0005, 11)).generate();
  const History b =
      EthereumHistoryGenerator(small_config(0.0005, 11)).generate();
  ASSERT_EQ(a.chain.size(), b.chain.size());
  ASSERT_EQ(a.accounts.size(), b.accounts.size());
  for (std::uint64_t i = 0; i < a.chain.size(); ++i)
    ASSERT_EQ(a.chain.block_hash(i), b.chain.block_hash(i));
}

TEST(Generator, SeedsDiverge) {
  const History a =
      EthereumHistoryGenerator(small_config(0.0005, 1)).generate();
  const History b =
      EthereumHistoryGenerator(small_config(0.0005, 2)).generate();
  EXPECT_NE(a.chain.block_hash(a.chain.size() - 1),
            b.chain.block_hash(b.chain.size() - 1));
}

TEST(Generator, ScaleScalesVolume) {
  const HistoryStats small = stats_of(
      EthereumHistoryGenerator(small_config(0.0005)).generate());
  const HistoryStats bigger = stats_of(
      EthereumHistoryGenerator(small_config(0.002)).generate());
  EXPECT_NEAR(static_cast<double>(bigger.calls) /
                  static_cast<double>(small.calls),
              4.0, 1.0);
}

TEST(Generator, MempoolModeProducesSameTransactions) {
  GeneratorConfig direct_cfg = small_config(0.0005, 31);
  GeneratorConfig miner_cfg = direct_cfg;
  miner_cfg.use_mempool = true;

  const History direct = EthereumHistoryGenerator(direct_cfg).generate();
  const History mined = EthereumHistoryGenerator(miner_cfg).generate();

  // Same transaction *set* (same rng stream), different block packing.
  EXPECT_EQ(workload::stats_of(direct).calls,
            workload::stats_of(mined).calls);
  EXPECT_EQ(direct.chain.transaction_count(),
            mined.chain.transaction_count());
  EXPECT_TRUE(mined.chain.validate());
}

TEST(Generator, MempoolModeRespectsGasLimit) {
  GeneratorConfig cfg = small_config(0.0003, 37);
  cfg.use_mempool = true;
  cfg.block_gas_limit = 300'000;  // tight: forces multi-block spill
  const History h = EthereumHistoryGenerator(cfg).generate();
  EXPECT_TRUE(h.chain.validate());
  for (const eth::Block& b : h.chain.blocks()) {
    std::uint64_t gas = 0;
    for (const eth::Transaction& tx : b.transactions)
      gas += eth::transaction_gas(tx);
    EXPECT_LE(gas, cfg.block_gas_limit) << "block " << b.number;
  }
}

TEST(Generator, MempoolModeKeepsNonceOrderPerSender) {
  GeneratorConfig cfg = small_config(0.0003, 41);
  cfg.use_mempool = true;
  const History h = EthereumHistoryGenerator(cfg).generate();
  std::unordered_map<eth::AccountId, std::uint64_t> last_nonce;
  for (const eth::Block& b : h.chain.blocks())
    for (const eth::Transaction& tx : b.transactions) {
      const auto it = last_nonce.find(tx.sender);
      if (it != last_nonce.end()) {
        ASSERT_GT(tx.nonce, it->second) << "sender " << tx.sender;
      }
      last_nonce[tx.sender] = tx.nonce;
    }
}

TEST(Generator, RejectsBadConfig) {
  GeneratorConfig cfg;
  cfg.scale = 0;
  EXPECT_THROW(EthereumHistoryGenerator{cfg}, util::CheckFailure);
}

// --------------------------------------------------------------- TraceIO

TEST(TraceIo, RoundTripPreservesStructure) {
  const History original =
      EthereumHistoryGenerator(small_config(0.0005, 23)).generate();
  std::stringstream buffer;
  write_trace(buffer, original);
  const History restored = read_trace(buffer);

  ASSERT_EQ(restored.chain.size(), original.chain.size());
  ASSERT_EQ(restored.chain.transaction_count(),
            original.chain.transaction_count());
  EXPECT_TRUE(restored.chain.validate());

  for (std::uint64_t i = 0; i < original.chain.size(); ++i) {
    const eth::Block& ob = original.chain.block(i);
    const eth::Block& rb = restored.chain.block(i);
    ASSERT_EQ(ob.timestamp, rb.timestamp);
    ASSERT_EQ(ob.transactions.size(), rb.transactions.size());
    for (std::size_t t = 0; t < ob.transactions.size(); ++t) {
      ASSERT_EQ(ob.transactions[t].sender, rb.transactions[t].sender);
      ASSERT_EQ(ob.transactions[t].calls, rb.transactions[t].calls);
    }
  }
}

TEST(TraceIo, RoundTripPreservesAccountKinds) {
  const History original =
      EthereumHistoryGenerator(small_config(0.0005, 29)).generate();
  std::stringstream buffer;
  write_trace(buffer, original);
  const History restored = read_trace(buffer);

  // Every account that participates in a call must keep its kind.
  std::unordered_set<eth::AccountId> participating;
  for (const eth::Block& b : original.chain.blocks())
    for (const eth::Transaction& tx : b.transactions)
      for (const eth::Call& c : tx.calls) {
        participating.insert(c.from);
        participating.insert(c.to);
      }
  for (eth::AccountId id : participating)
    EXPECT_EQ(restored.accounts.info(id).kind,
              original.accounts.info(id).kind)
        << "account " << id;
}

TEST(TraceIo, HandcraftedTrace) {
  const std::string csv =
      "block,timestamp,tx_index,call_index,from,to,kind,value\n"
      "0,1000,0,0,0,1,T,5\n"
      "0,1000,1,0,2,3,C,0\n"
      "0,1000,1,1,3,1,T,7\n"
      "1,2000,0,0,1,3,C,0\n";
  std::istringstream in(csv);
  const History h = read_trace(in);
  EXPECT_EQ(h.chain.size(), 2u);
  EXPECT_EQ(h.chain.transaction_count(), 3u);
  EXPECT_EQ(h.accounts.size(), 4u);
  EXPECT_EQ(h.accounts.info(3).kind, eth::AccountKind::kContract);
  EXPECT_EQ(h.accounts.info(1).kind, eth::AccountKind::kExternallyOwned);
  EXPECT_TRUE(h.chain.validate());
}

TEST(TraceIo, RejectsBadHeader) {
  std::istringstream in("foo,bar\n");
  EXPECT_THROW(read_trace(in), util::CheckFailure);
}

TEST(TraceIo, RejectsOutOfOrderBlocks) {
  const std::string csv =
      "block,timestamp,tx_index,call_index,from,to,kind,value\n"
      "1,1000,0,0,0,1,T,5\n";
  std::istringstream in(csv);
  EXPECT_THROW(read_trace(in), util::CheckFailure);
}

TEST(TraceIo, RejectsBadKind) {
  const std::string csv =
      "block,timestamp,tx_index,call_index,from,to,kind,value\n"
      "0,1000,0,0,0,1,Z,5\n";
  std::istringstream in(csv);
  EXPECT_THROW(read_trace(in), util::CheckFailure);
}

// --------------------------------------------------------------- analysis

TEST(Gini, KnownDistributions) {
  EXPECT_DOUBLE_EQ(gini({}), 0.0);
  EXPECT_DOUBLE_EQ(gini({5}), 0.0);
  EXPECT_DOUBLE_EQ(gini({3, 3, 3, 3}), 0.0);        // perfect equality
  EXPECT_NEAR(gini({0, 0, 0, 10}), 0.75, 1e-9);     // one vertex has all
  // Two equal holders of everything among four: G = 0.5.
  EXPECT_NEAR(gini({0, 0, 5, 5}), 0.5, 1e-9);
}

TEST(Gini, ScaleInvariant) {
  const std::vector<double> base = {1, 2, 3, 10, 20};
  std::vector<double> scaled;
  for (double v : base) scaled.push_back(v * 1000);
  EXPECT_NEAR(gini(base), gini(scaled), 1e-12);
}

TEST_F(GeneratedHistoryTest, WorkloadReportPhasesAddUp) {
  const WorkloadReport r = analyze_workload(history());
  const HistoryStats st = stats_of(history());
  EXPECT_EQ(r.pre_attack.calls + r.attack.calls + r.post_attack.calls,
            st.calls);
  EXPECT_EQ(r.pre_attack.transactions + r.attack.transactions +
                r.post_attack.transactions,
            st.transactions);
  EXPECT_EQ(r.pre_attack.blocks + r.attack.blocks + r.post_attack.blocks,
            st.blocks);
}

TEST_F(GeneratedHistoryTest, AttackEraMintsMostNewAccountsPerDay) {
  const WorkloadReport r = analyze_workload(history());
  const double attack_days =
      static_cast<double>(r.attack.to - r.attack.from) / util::kDay;
  const double post_days =
      static_cast<double>(r.post_attack.to - r.post_attack.from) /
      util::kDay;
  const double attack_rate =
      static_cast<double>(r.attack.new_accounts) / attack_days;
  const double post_rate =
      static_cast<double>(r.post_attack.new_accounts) / post_days;
  EXPECT_GT(attack_rate, 2.0 * post_rate);
}

TEST_F(GeneratedHistoryTest, ActivityIsHighlyUnequal) {
  const WorkloadReport r = analyze_workload(history());
  // Hub-dominated: strong inequality and a fat single-touch tail.
  EXPECT_GT(r.activity_gini, 0.5);
  EXPECT_LT(r.activity_gini, 1.0);
  EXPECT_GT(r.top1pct_share, 0.15);
  EXPECT_GT(r.single_touch_vertices, r.total_vertices / 4);
}

TEST(WorkloadAnalysis, UniformPresetIsMoreEqual) {
  const History hubby = EthereumHistoryGenerator(
      preset_config(Preset::kPaper, {.scale = 0.001, .seed = 13})).generate();
  const History flat = EthereumHistoryGenerator(
      preset_config(Preset::kUniform, {.scale = 0.001, .seed = 13})).generate();
  EXPECT_LT(analyze_workload(flat).activity_gini,
            analyze_workload(hubby).activity_gini);
}

TEST(WorkloadAnalysis, EmptyHistory) {
  const History empty;
  const WorkloadReport r = analyze_workload(empty);
  EXPECT_EQ(r.total_vertices, 0u);
  EXPECT_DOUBLE_EQ(r.activity_gini, 0.0);
}

// ---------------------------------------------------------------- presets

TEST(Presets, NamesRoundTrip) {
  for (Preset p : kAllPresets)
    EXPECT_EQ(preset_from_name(preset_name(p)), p);
  EXPECT_THROW(preset_from_name("bogus"), util::CheckFailure);
}

TEST(Presets, NoAttackRemovesDummyWave) {
  const History attack = EthereumHistoryGenerator(
      preset_config(Preset::kPaper, {.scale = 0.001, .seed = 9})).generate();
  const History clean = EthereumHistoryGenerator(
      preset_config(Preset::kNoAttack, {.scale = 0.001, .seed = 9})).generate();

  auto attack_accounts = [](const History& h) {
    std::uint64_t n = 0;
    for (const eth::AccountInfo& info : h.accounts.all())
      if (info.created_at >= util::attack_start_time() &&
          info.created_at < util::attack_end_time())
        ++n;
    return n;
  };
  EXPECT_LT(attack_accounts(clean), attack_accounts(attack) / 10);
  // Total volume also drops by roughly the attack's contribution.
  EXPECT_LT(stats_of(clean).calls, stats_of(attack).calls);
}

TEST(Presets, TransfersOnlyHasNoContracts) {
  const History h = EthereumHistoryGenerator(
      preset_config(Preset::kTransfersOnly, {.scale = 0.0005, .seed = 9})).generate();
  EXPECT_EQ(h.accounts.contract_count(), 0u);
  for (const eth::Block& b : h.chain.blocks())
    for (const eth::Transaction& tx : b.transactions)
      for (const eth::Call& c : tx.calls)
        ASSERT_EQ(c.kind, eth::CallKind::kTransfer);
}

TEST(Presets, UniformKillsHubs) {
  auto max_over_mean_degree = [](const History& h) {
    std::unordered_map<eth::AccountId, std::uint64_t> degree;
    for (const eth::Block& b : h.chain.blocks())
      for (const eth::Transaction& tx : b.transactions)
        for (const eth::Call& c : tx.calls) {
          ++degree[c.from];
          ++degree[c.to];
        }
    std::uint64_t max = 0;
    double total = 0;
    for (const auto& [id, d] : degree) {
      max = std::max(max, d);
      total += static_cast<double>(d);
    }
    return static_cast<double>(max) /
           (total / static_cast<double>(degree.size()));
  };
  const History hubby = EthereumHistoryGenerator(
      preset_config(Preset::kPaper, {.scale = 0.001, .seed = 9})).generate();
  const History flat = EthereumHistoryGenerator(
      preset_config(Preset::kUniform, {.scale = 0.001, .seed = 9})).generate();
  EXPECT_LT(max_over_mean_degree(flat), max_over_mean_degree(hubby));
}

TEST(Presets, IcoFrenzyMintsMoreIcos) {
  auto ico_count = [](const History& h) {
    std::uint64_t n = 0;
    for (const eth::AccountInfo& info : h.accounts.all())
      if (info.archetype == eth::ContractArchetype::kIco) ++n;
    return n;
  };
  const History normal = EthereumHistoryGenerator(
      preset_config(Preset::kPaper, {.scale = 0.001, .seed = 9})).generate();
  const History frenzy = EthereumHistoryGenerator(
      preset_config(Preset::kIcoFrenzy, {.scale = 0.001, .seed = 9})).generate();
  EXPECT_GT(ico_count(frenzy), ico_count(normal));
}

// ------------------------------------------------------- BigQuery import

constexpr const char* kTracesHeader =
    "block_number,block_timestamp,transaction_hash,from_address,"
    "to_address,value,trace_type,input\n";

std::string addr(int n) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "0x%040x", n);
  return buf;
}

TEST(BigQueryImport, BasicTracesImport) {
  std::string csv = kTracesHeader;
  // Block 4000000: one tx with a contract call cascade, one transfer.
  csv += "4000000,2017-07-01 12:00:00 UTC,0xaaa," + addr(1) + "," +
         addr(2) + ",0,call,0xdeadbeef\n";
  csv += "4000000,2017-07-01 12:00:00 UTC,0xaaa," + addr(2) + "," +
         addr(3) + ",5,call,\n";
  csv += "4000000,2017-07-01 12:00:00 UTC,0xbbb," + addr(4) + "," +
         addr(5) + ",1000,call,0x\n";
  // Block 4000001: a contract creation.
  csv += "4000001,2017-07-01 12:00:15 UTC,0xccc," + addr(1) + "," +
         addr(6) + ",0,create,0x60806040\n";
  std::istringstream in(csv);
  const ImportResult r = import_bigquery_traces(in);

  EXPECT_EQ(r.stats.rows, 4u);
  EXPECT_EQ(r.stats.skipped_rows, 0u);
  EXPECT_EQ(r.stats.imported_calls, 4u);
  EXPECT_EQ(r.stats.transactions, 3u);
  EXPECT_EQ(r.stats.blocks, 2u);
  EXPECT_EQ(r.stats.accounts, 6u);

  EXPECT_TRUE(r.history.chain.validate());
  // Contract detection: addr(2) called with calldata → contract; addr(3)
  // and addr(5) got plain transfers → EOA; addr(6) created → contract.
  const auto& reg = r.history.accounts;
  EXPECT_EQ(reg.info(1).kind, eth::AccountKind::kContract);  // addr(2)=id1
  EXPECT_EQ(reg.info(2).kind, eth::AccountKind::kExternallyOwned);
  EXPECT_EQ(reg.info(4).kind, eth::AccountKind::kExternallyOwned);
  EXPECT_EQ(reg.info(5).kind, eth::AccountKind::kContract);  // created

  // Call kinds map through.
  const eth::Block& b0 = r.history.chain.block(0);
  ASSERT_EQ(b0.transactions.size(), 2u);
  EXPECT_EQ(b0.transactions[0].calls[0].kind,
            eth::CallKind::kContractCall);
  EXPECT_EQ(b0.transactions[0].calls[1].kind, eth::CallKind::kTransfer);
  EXPECT_EQ(b0.transactions[0].calls[1].value_wei, 5u);
}

TEST(BigQueryImport, SkipsRewardAndMalformedRows) {
  std::string csv = kTracesHeader;
  csv += "1,1500000000,0x1," + addr(9) + "," + addr(8) + ",0,reward,\n";
  csv += "1,1500000000,0x1,garbage," + addr(8) + ",0,call,\n";
  csv += "1,not-a-time,0x1," + addr(9) + "," + addr(8) + ",0,call,\n";
  csv += "1,1500000000,0x1," + addr(9) + "," + addr(8) + ",7,call,0x\n";
  std::istringstream in(csv);
  const ImportResult r = import_bigquery_traces(in);
  EXPECT_EQ(r.stats.skipped_rows, 3u);
  EXPECT_EQ(r.stats.imported_calls, 1u);
  EXPECT_EQ(r.history.chain.transaction_count(), 1u);
}

TEST(BigQueryImport, UnixTimestampsAccepted) {
  std::string csv = kTracesHeader;
  csv += "10,1500000000,0x1," + addr(1) + "," + addr(2) + ",1,call,0x\n";
  std::istringstream in(csv);
  const ImportResult r = import_bigquery_traces(in);
  ASSERT_EQ(r.history.chain.size(), 1u);
  EXPECT_EQ(r.history.chain.block(0).timestamp, 1500000000);
}

TEST(BigQueryImport, HugeValuesClampInsteadOfOverflow) {
  std::string csv = kTracesHeader;
  csv += "10,1500000000,0x1," + addr(1) + "," + addr(2) +
         ",999999999999999999999999999999,call,0x\n";
  std::istringstream in(csv);
  const ImportResult r = import_bigquery_traces(in);
  EXPECT_EQ(r.history.chain.block(0).transactions[0].calls[0].value_wei,
            ~std::uint64_t{0});
}

TEST(BigQueryImport, RejectsUnsortedBlocks) {
  std::string csv = kTracesHeader;
  csv += "10,1500000000,0x1," + addr(1) + "," + addr(2) + ",1,call,0x\n";
  csv += "9,1500000000,0x2," + addr(1) + "," + addr(2) + ",1,call,0x\n";
  std::istringstream in(csv);
  EXPECT_THROW(import_bigquery_traces(in), util::CheckFailure);
}

TEST(BigQueryImport, RejectsMissingColumns) {
  std::istringstream in("block_number,from_address\n1,0xab\n");
  EXPECT_THROW(import_bigquery_traces(in), util::CheckFailure);
}

TEST(BigQueryImport, ImportedHistoryDrivesSimulatorPipeline) {
  // End-to-end: a handcrafted real-schema snippet flows through trace
  // round-trip just like synthetic data.
  std::string csv = kTracesHeader;
  for (int b = 0; b < 5; ++b)
    for (int t = 0; t < 3; ++t)
      csv += std::to_string(100 + b) + ",150000000" + std::to_string(b) +
             ",0xt" + std::to_string(b * 3 + t) + "," + addr(t + 1) + "," +
             addr(t + 2) + ",1,call,0x\n";
  std::istringstream in(csv);
  const ImportResult r = import_bigquery_traces(in);
  EXPECT_EQ(r.stats.blocks, 5u);

  std::stringstream buffer;
  write_trace(buffer, r.history);
  const History reread = read_trace(buffer);
  EXPECT_EQ(reread.chain.transaction_count(),
            r.history.chain.transaction_count());
}

TEST(TraceIo, EmptyTraceBody) {
  std::istringstream in(
      "block,timestamp,tx_index,call_index,from,to,kind,value\n");
  const History h = read_trace(in);
  EXPECT_TRUE(h.chain.empty());
  EXPECT_EQ(h.accounts.size(), 0u);
}

}  // namespace
}  // namespace ethshard::workload
