// Tests for the partition module: assignment type, hashing, FM bisection,
// coarsening, initial/recursive bisection, k-way refinement, the
// multilevel partitioner, Kernighan–Lin and balanced label propagation.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "metrics/metrics.hpp"
#include "partition/blp.hpp"
#include "partition/coarsen.hpp"
#include "partition/ensemble.hpp"
#include "partition/fm.hpp"
#include "partition/hash_partitioner.hpp"
#include "partition/initial_bisection.hpp"
#include "partition/kernighan_lin.hpp"
#include "partition/kway_refine.hpp"
#include "partition/metis_io.hpp"
#include "partition/mlkp.hpp"
#include "partition/quality.hpp"
#include "partition/recursive_bisection.hpp"
#include "partition/spectral.hpp"
#include "partition/streaming.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ethshard::partition {
namespace {

using graph::Graph;
using graph::Vertex;
using graph::Weight;

// ----------------------------------------------------------------- types

TEST(Partition, ConstructionAndAssignment) {
  Partition p(5, 3);
  EXPECT_EQ(p.k(), 3u);
  EXPECT_EQ(p.size(), 5u);
  EXPECT_FALSE(p.is_complete());
  for (Vertex v = 0; v < 5; ++v) p.assign(v, static_cast<ShardId>(v % 3));
  EXPECT_TRUE(p.is_complete());
  EXPECT_EQ(p.shard_sizes(), (std::vector<std::uint64_t>{2, 2, 1}));
}

TEST(Partition, AppendGrows) {
  Partition p(0, 2);
  EXPECT_EQ(p.append(1), 0u);
  EXPECT_EQ(p.append(kUnassigned), 1u);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.shard_of(0), 1u);
}

TEST(Partition, RejectsOutOfRangeShard) {
  Partition p(2, 2);
  EXPECT_THROW(p.assign(0, 2), util::CheckFailure);
  EXPECT_THROW(p.assign(5, 0), util::CheckFailure);
}

TEST(Partition, ShardWeights) {
  graph::GraphBuilder b;
  b.add_vertex(10);
  b.add_vertex(20);
  b.add_vertex(30);
  const Graph g = b.build_directed();
  Partition p(3, 2);
  p.assign(0, 0);
  p.assign(1, 1);
  p.assign(2, 1);
  EXPECT_EQ(p.shard_weights(g), (std::vector<Weight>{10, 50}));
}

TEST(EdgeCut, CountsAndWeights) {
  graph::GraphBuilder b;
  b.ensure_vertices(4);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 2, 3);
  b.add_edge(2, 3, 7);
  const Graph g = b.build_undirected();
  Partition p(4, 2);
  p.assign(0, 0);
  p.assign(1, 0);
  p.assign(2, 1);
  p.assign(3, 1);
  EXPECT_EQ(edge_cut_count(g, p), 1u);   // only 1-2 crosses
  EXPECT_EQ(edge_cut_weight(g, p), 3u);
}

TEST(EdgeCut, UnassignedEndpointsIgnored) {
  const Graph g = graph::make_path(3);
  Partition p(3, 2);
  p.assign(0, 0);
  p.assign(2, 1);  // vertex 1 unassigned
  EXPECT_EQ(edge_cut_count(g, p), 0u);
}

TEST(Moves, CountsOnlyRealMoves) {
  Partition before(4, 2);
  Partition after(5, 2);  // one brand-new vertex
  before.assign(0, 0);
  before.assign(1, 1);
  before.assign(2, 0);  // 3 left unassigned
  after.assign(0, 1);   // moved
  after.assign(1, 1);   // stayed
  after.assign(2, 1);   // moved
  after.assign(3, 0);   // first assignment, not a move
  after.assign(4, 0);   // new vertex, not a move
  EXPECT_EQ(count_moves(before, after), 2u);
}

TEST(AlignLabels, UndoesPurePermutation) {
  Partition ref(9, 3);
  Partition perm(9, 3);
  for (Vertex v = 0; v < 9; ++v) {
    const auto s = static_cast<ShardId>(v % 3);
    ref.assign(v, s);
    perm.assign(v, (s + 1) % 3);  // rotated labels, same structure
  }
  EXPECT_EQ(count_moves(ref, perm), 9u);
  align_partition_labels(ref, &perm);
  EXPECT_EQ(count_moves(ref, perm), 0u);
  EXPECT_EQ(perm, ref);
}

TEST(AlignLabels, StructuralChangesStillCount) {
  Partition ref(4, 2);
  Partition next(4, 2);
  ref.assign(0, 0);
  ref.assign(1, 0);
  ref.assign(2, 1);
  ref.assign(3, 1);
  next.assign(0, 0);
  next.assign(1, 1);  // genuinely moved
  next.assign(2, 1);
  next.assign(3, 1);
  align_partition_labels(ref, &next);
  EXPECT_EQ(count_moves(ref, next), 1u);
}

TEST(AlignLabels, CutIsInvariant) {
  const Graph g = graph::make_grid(8, 8);
  HashPartitioner hp;
  const Partition ref = hp.partition(g, 4);
  Partition target = HashPartitioner(99).partition(g, 4);
  const Weight cut_before = edge_cut_weight(g, target);
  align_partition_labels(ref, &target);
  EXPECT_EQ(edge_cut_weight(g, target), cut_before);
}

TEST(AlignLabels, NeverIncreasesMoves) {
  util::Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const std::uint32_t k = 2 + static_cast<std::uint32_t>(rng.uniform(6));
    Partition ref(50, k);
    Partition target(50, k);
    for (Vertex v = 0; v < 50; ++v) {
      ref.assign(v, static_cast<ShardId>(rng.uniform(k)));
      target.assign(v, static_cast<ShardId>(rng.uniform(k)));
    }
    const std::uint64_t before = count_moves(ref, target);
    align_partition_labels(ref, &target);
    EXPECT_LE(count_moves(ref, target), before);
  }
}

TEST(AlignLabels, MismatchedKThrows) {
  Partition ref(2, 2, 0);
  Partition target(2, 3, 0);
  EXPECT_THROW(align_partition_labels(ref, &target), util::CheckFailure);
}

// --------------------------------------------------------------- hashing

TEST(HashPartitioner, CompleteAndDeterministic) {
  const Graph g = graph::make_path(100);
  HashPartitioner hp;
  const Partition a = hp.partition(g, 4);
  const Partition b = hp.partition(g, 4);
  EXPECT_TRUE(a.is_complete());
  EXPECT_EQ(a, b);
}

TEST(HashPartitioner, NearPerfectStaticBalance) {
  const Graph g = graph::make_path(10000);
  HashPartitioner hp;
  const Partition p = hp.partition(g, 8);
  const auto sizes = p.shard_sizes();
  for (std::uint64_t s : sizes) EXPECT_NEAR(s, 1250.0, 150.0);
}

TEST(HashPartitioner, SaltChangesAssignment) {
  const Graph g = graph::make_path(100);
  const Partition a = HashPartitioner(1).partition(g, 4);
  const Partition b = HashPartitioner(2).partition(g, 4);
  EXPECT_NE(a, b);
}

TEST(HashPartitioner, ShardOfMatchesPartition) {
  const Graph g = graph::make_path(50);
  HashPartitioner hp(7);
  const Partition p = hp.partition(g, 3);
  for (Vertex v = 0; v < 50; ++v)
    EXPECT_EQ(p.shard_of(v), hp.shard_of(v, 3));
}

TEST(HashPartitioner, HighEdgeCutOnStructuredGraph) {
  // On a path, hashing cuts roughly (k-1)/k of the edges.
  const Graph g = graph::make_path(20000);
  HashPartitioner hp;
  const Partition p = hp.partition(g, 8);
  const double cut = metrics::static_edge_cut(g, p);
  EXPECT_GT(cut, 0.8);
}

// -------------------------------------------------------------------- FM

TEST(Fm, ImprovesRandomBisectionOnTwoCliques) {
  const Graph g = graph::make_two_cliques(40, 2);
  util::Rng rng(3);
  Partition p = random_balanced_bisection(g, 0.5, rng);
  const Weight cut = fm_refine_bisection(g, p, 0.5, FmConfig{}, rng);
  // Optimal bisection cuts exactly the 2 bridges.
  EXPECT_EQ(cut, 2u);
  EXPECT_EQ(cut, edge_cut_weight(g, p));
  const auto sizes = p.shard_sizes();
  EXPECT_EQ(sizes[0], 20u);
  EXPECT_EQ(sizes[1], 20u);
}

TEST(Fm, RespectsBalanceCap) {
  const Graph g = graph::make_complete(30);  // any bisection cuts a lot
  util::Rng rng(5);
  Partition p = random_balanced_bisection(g, 0.5, rng);
  fm_refine_bisection(g, p, 0.5, FmConfig{.imbalance = 0.1}, rng);
  const auto sizes = p.shard_sizes();
  EXPECT_LE(std::max(sizes[0], sizes[1]), 17u);  // 15 * 1.1 rounded up
  EXPECT_GE(std::min(sizes[0], sizes[1]), 13u);
}

TEST(Fm, NeverWorsensCut) {
  util::Rng graph_rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = graph::make_erdos_renyi(60, 0.1, graph_rng);
    util::Rng rng(100 + trial);
    Partition p = random_balanced_bisection(g, 0.5, rng);
    const Weight before = edge_cut_weight(g, p);
    const Weight after = fm_refine_bisection(g, p, 0.5, FmConfig{}, rng);
    EXPECT_LE(after, before);
  }
}

TEST(Fm, HandlesSingleDominantVertexWeight) {
  graph::GraphBuilder b;
  b.add_vertex(1000);  // dominant hub
  for (int i = 0; i < 9; ++i) b.add_vertex(1);
  for (Vertex v = 1; v < 10; ++v) b.add_edge(0, v, 1);
  const Graph g = b.build_undirected();
  util::Rng rng(13);
  Partition p = random_balanced_bisection(g, 0.5, rng);
  EXPECT_NO_THROW(fm_refine_bisection(g, p, 0.5, FmConfig{}, rng));
  EXPECT_TRUE(p.is_complete());
}

TEST(Fm, RejectsWrongK) {
  const Graph g = graph::make_path(4);
  Partition p(4, 3, 0);
  util::Rng rng(1);
  EXPECT_THROW(fm_refine_bisection(g, p, 0.5, FmConfig{}, rng),
               util::CheckFailure);
}

// ------------------------------------------------------------- coarsening

TEST(Coarsen, PreservesTotalVertexWeight) {
  util::Rng rng(17);
  const Graph g = graph::make_erdos_renyi(200, 0.05, rng);
  const CoarseLevel level = coarsen_once(g, MatchingScheme::kHeavyEdge, rng);
  EXPECT_EQ(level.graph.total_vertex_weight(), g.total_vertex_weight());
  EXPECT_LT(level.graph.num_vertices(), g.num_vertices());
  EXPECT_GE(level.graph.num_vertices(), g.num_vertices() / 2);
}

TEST(Coarsen, MapCoversAllVertices) {
  util::Rng rng(19);
  const Graph g = graph::make_grid(10, 10);
  const CoarseLevel level = coarsen_once(g, MatchingScheme::kHeavyEdge, rng);
  ASSERT_EQ(level.fine_to_coarse.size(), g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    EXPECT_LT(level.fine_to_coarse[v], level.graph.num_vertices());
}

TEST(Coarsen, CutWeightIsPreservedUnderProjection) {
  // Any partition of the coarse graph, projected to the fine graph, has
  // exactly the same cut weight — the core multilevel invariant.
  util::Rng rng(23);
  const Graph g = graph::make_erdos_renyi(150, 0.08, rng);
  const CoarseLevel level = coarsen_once(g, MatchingScheme::kHeavyEdge, rng);

  HashPartitioner hp;
  const Partition coarse = hp.partition(level.graph, 3);
  Partition fine(g.num_vertices(), 3);
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    fine.assign(v, coarse.shard_of(level.fine_to_coarse[v]));
  EXPECT_EQ(edge_cut_weight(level.graph, coarse),
            edge_cut_weight(g, fine));
}

TEST(Coarsen, HierarchyReachesTarget) {
  util::Rng rng(29);
  const Graph g = graph::make_grid(40, 40);
  const auto levels = coarsen(g, 100, MatchingScheme::kHeavyEdge, rng);
  ASSERT_FALSE(levels.empty());
  EXPECT_LE(levels.back().graph.num_vertices(), 110u);  // near target
  for (std::size_t i = 1; i < levels.size(); ++i)
    EXPECT_LT(levels[i].graph.num_vertices(),
              levels[i - 1].graph.num_vertices());
}

TEST(Coarsen, StallsGracefullyOnStar) {
  // A star graph can halve at most once per round around the hub; the
  // shrink guard must terminate the loop rather than spin.
  graph::GraphBuilder b;
  b.ensure_vertices(101);
  for (Vertex v = 1; v <= 100; ++v) b.add_edge(0, v);
  const Graph g = b.build_undirected();
  util::Rng rng(31);
  const auto levels = coarsen(g, 2, MatchingScheme::kHeavyEdge, rng);
  EXPECT_LT(levels.size(), 60u);  // terminated
}

TEST(Coarsen, RandomMatchingAlsoShrinks) {
  util::Rng rng(37);
  const Graph g = graph::make_grid(20, 20);
  const CoarseLevel level = coarsen_once(g, MatchingScheme::kRandom, rng);
  EXPECT_LT(level.graph.num_vertices(), g.num_vertices());
}

TEST(Coarsen, HeavyEdgePrefersHeavyEdges) {
  // Two vertices joined by a huge edge must merge.
  graph::GraphBuilder b;
  b.ensure_vertices(4);
  b.add_edge(0, 1, 100);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 3, 100);
  const Graph g = b.build_undirected();
  util::Rng rng(41);
  const CoarseLevel level = coarsen_once(g, MatchingScheme::kHeavyEdge, rng);
  EXPECT_EQ(level.graph.num_vertices(), 2u);
  EXPECT_EQ(level.fine_to_coarse[0], level.fine_to_coarse[1]);
  EXPECT_EQ(level.fine_to_coarse[2], level.fine_to_coarse[3]);
}

// -------------------------------------------------- initial + recursive

TEST(InitialBisection, AchievesTargetSplit) {
  const Graph g = graph::make_grid(10, 10);
  util::Rng rng(43);
  const Partition p = initial_bisection(g, 0.5, FmConfig{}, 4, rng);
  EXPECT_TRUE(p.is_complete());
  const auto sizes = p.shard_sizes();
  EXPECT_NEAR(static_cast<double>(sizes[0]), 50.0, 10.0);
}

TEST(InitialBisection, AsymmetricTarget) {
  const Graph g = graph::make_grid(10, 10);
  util::Rng rng(47);
  const Partition p = initial_bisection(g, 0.25, FmConfig{}, 4, rng);
  const auto sizes = p.shard_sizes();
  EXPECT_NEAR(static_cast<double>(sizes[0]), 25.0, 8.0);
}

TEST(InitialBisection, GridCutNearOptimal) {
  // A 10×10 grid's optimal bisection cuts 10 edges; greedy+FM should be
  // close.
  const Graph g = graph::make_grid(10, 10);
  util::Rng rng(53);
  Partition p = initial_bisection(g, 0.5, FmConfig{}, 8, rng);
  EXPECT_LE(edge_cut_weight(g, p), 16u);
}

TEST(InitialBisection, DisconnectedGraph) {
  // Two disjoint cliques: growing must restart across components.
  graph::GraphBuilder b;
  b.ensure_vertices(20);
  for (Vertex i = 0; i < 10; ++i)
    for (Vertex j = i + 1; j < 10; ++j) {
      b.add_edge(i, j);
      b.add_edge(10 + i, 10 + j);
    }
  const Graph g = b.build_undirected();
  util::Rng rng(59);
  const Partition p = initial_bisection(g, 0.5, FmConfig{}, 4, rng);
  EXPECT_TRUE(p.is_complete());
  EXPECT_EQ(edge_cut_weight(g, p), 0u);  // split along components
}

TEST(RecursiveBisection, ProducesAllShards) {
  const Graph g = graph::make_grid(12, 12);
  util::Rng rng(61);
  for (std::uint32_t k : {2u, 3u, 4u, 5u, 8u}) {
    const Partition p = recursive_bisection_ggg(g, k, FmConfig{}, 4, rng);
    EXPECT_TRUE(p.is_complete());
    const auto sizes = p.shard_sizes();
    ASSERT_EQ(sizes.size(), k);
    for (std::uint64_t s : sizes) EXPECT_GT(s, 0u) << "k=" << k;
  }
}

// ---------------------------------------------------------- kway refine

TEST(KwayRefine, ImprovesHashedPartition) {
  util::Rng grng(67);
  const Graph g = graph::make_planted_partition(4, 30, 0.4, 0.02, grng);
  HashPartitioner hp;
  Partition p = hp.partition(g, 4);
  const Weight before = edge_cut_weight(g, p);
  util::Rng rng(71);
  const Weight after = kway_refine(g, p, KwayRefineConfig{}, rng);
  EXPECT_LT(after, before);
  EXPECT_TRUE(p.is_complete());
}

TEST(KwayRefine, NeverEmptiesAShard) {
  const Graph g = graph::make_complete(12);
  Partition p(12, 3);
  for (Vertex v = 0; v < 12; ++v) p.assign(v, static_cast<ShardId>(v % 3));
  util::Rng rng(73);
  kway_refine(g, p, KwayRefineConfig{}, rng);
  for (std::uint64_t s : p.shard_sizes()) EXPECT_GE(s, 1u);
}

TEST(KwayRefine, RespectsWeightCap) {
  util::Rng grng(79);
  const Graph g = graph::make_erdos_renyi(120, 0.06, grng);
  HashPartitioner hp;
  Partition p = hp.partition(g, 4);
  util::Rng rng(83);
  kway_refine(g, p, KwayRefineConfig{.imbalance = 0.05}, rng);
  const auto weights = p.shard_weights(g);
  const double cap = 120.0 / 4 * 1.05 + 1;
  for (Weight w : weights) EXPECT_LE(static_cast<double>(w), cap);
}

// ------------------------------------------------------------------ MLKP

class MlkpParamTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(MlkpParamTest, ValidBalancedPartitions) {
  const auto [k, graph_kind] = GetParam();
  util::Rng grng(100 + graph_kind);
  Graph g;
  switch (graph_kind) {
    case 0:
      g = graph::make_grid(16, 16);
      break;
    case 1:
      g = graph::make_erdos_renyi(300, 0.03, grng);
      break;
    case 2:
      g = graph::make_barabasi_albert(300, 3, grng);
      break;
    case 3:
      g = graph::make_planted_partition(4, 64, 0.25, 0.01, grng);
      break;
    default:
      g = graph::make_cycle(257);
  }
  MlkpPartitioner mlkp;
  const Partition p = mlkp.partition(g, k);
  EXPECT_TRUE(p.is_complete());
  EXPECT_EQ(p.k(), k);
  EXPECT_EQ(p.size(), g.num_vertices());
  for (std::uint64_t s : p.shard_sizes()) EXPECT_GT(s, 0u);
  // Balance within a loose envelope of the configured 3% (coarse-level
  // granularity can overshoot slightly on small graphs).
  const double balance = metrics::static_balance(p);
  EXPECT_LT(balance, 1.35) << "k=" << k << " graph=" << graph_kind;
}

INSTANTIATE_TEST_SUITE_P(
    GraphFamiliesAndK, MlkpParamTest,
    ::testing::Combine(::testing::Values(2u, 4u, 8u),
                       ::testing::Values(0, 1, 2, 3, 4)));

TEST(Mlkp, RecoversPlantedCommunities) {
  util::Rng grng(107);
  const Graph g = graph::make_planted_partition(2, 80, 0.3, 0.005, grng);
  MlkpPartitioner mlkp;
  const Partition p = mlkp.partition(g, 2);
  // The planted cut is tiny; MLKP must find something close to it.
  const double cut = metrics::static_edge_cut(g, p);
  EXPECT_LT(cut, 0.08);
}

TEST(Mlkp, TwoCliquesOptimal) {
  const Graph g = graph::make_two_cliques(60, 2);
  MlkpPartitioner mlkp;
  const Partition p = mlkp.partition(g, 2);
  EXPECT_EQ(edge_cut_weight(g, p), 2u);
}

TEST(Mlkp, BeatsHashingOnStructuredGraphs) {
  util::Rng grng(109);
  const Graph g = graph::make_grid(30, 30);
  MlkpPartitioner mlkp;
  HashPartitioner hp;
  for (std::uint32_t k : {2u, 4u}) {
    const double mc = metrics::static_edge_cut(g, mlkp.partition(g, k));
    const double hc = metrics::static_edge_cut(g, hp.partition(g, k));
    EXPECT_LT(mc, hc / 4) << "k=" << k;
  }
}

TEST(Mlkp, DeterministicForFixedSeed) {
  util::Rng grng(113);
  const Graph g = graph::make_erdos_renyi(200, 0.04, grng);
  MlkpPartitioner a(MlkpConfig{.seed = 5});
  MlkpPartitioner b(MlkpConfig{.seed = 5});
  EXPECT_EQ(a.partition(g, 4), b.partition(g, 4));
}

TEST(Mlkp, AcceptsDirectedInput) {
  graph::GraphBuilder b;
  b.ensure_vertices(10);
  for (Vertex v = 0; v + 1 < 10; ++v) b.add_edge(v, v + 1, 2);
  const Graph directed = b.build_directed();
  MlkpPartitioner mlkp;
  const Partition p = mlkp.partition(directed, 2);
  EXPECT_TRUE(p.is_complete());
}

TEST(Mlkp, DegenerateCases) {
  MlkpPartitioner mlkp;
  const Graph empty;
  EXPECT_EQ(mlkp.partition(empty, 4).size(), 0u);

  const Graph tiny = graph::make_path(3);
  const Partition p = mlkp.partition(tiny, 8);  // fewer vertices than shards
  EXPECT_TRUE(p.is_complete());

  const Graph g = graph::make_path(10);
  const Partition one = mlkp.partition(g, 1);
  for (Vertex v = 0; v < 10; ++v) EXPECT_EQ(one.shard_of(v), 0u);
}

TEST(Mlkp, WeightedVerticesBalanceByWeight) {
  graph::GraphBuilder b;
  // 4 heavy vertices (weight 100) + 96 light (weight 1) in a cycle.
  for (int i = 0; i < 100; ++i) b.add_vertex(i < 4 ? 100 : 1);
  for (Vertex v = 0; v < 100; ++v) b.add_edge(v, (v + 1) % 100);
  const Graph g = b.build_undirected();
  MlkpPartitioner mlkp;
  const Partition p = mlkp.partition(g, 2);
  const auto w = p.shard_weights(g);
  const double total = static_cast<double>(w[0] + w[1]);
  EXPECT_LT(std::max(w[0], w[1]) / total, 0.62);
}

class MlkpImbalanceTest : public ::testing::TestWithParam<double> {};

TEST_P(MlkpImbalanceTest, RespectsConfiguredTolerance) {
  const double imbalance = GetParam();
  util::Rng grng(117);
  const Graph g = graph::make_erdos_renyi(400, 0.02, grng);
  MlkpPartitioner mlkp(MlkpConfig{.imbalance = imbalance, .seed = 3});
  const Partition p = mlkp.partition(g, 4);
  // Recursive bisection composes the tolerance once per level
  // (log2(4) = 2), plus slack for small-graph granularity.
  const double bound = (1.0 + imbalance) * (1.0 + imbalance) + 0.10;
  EXPECT_LT(metrics::static_balance(p), bound)
      << "imbalance=" << imbalance;
}

INSTANTIATE_TEST_SUITE_P(Tolerances, MlkpImbalanceTest,
                         ::testing::Values(0.01, 0.03, 0.10, 0.30));

TEST(Mlkp, LooserImbalanceNeverHurtsCut) {
  // More freedom can only help (statistically): compare tight vs loose
  // tolerance on a structured graph.
  util::Rng grng(119);
  const Graph g = graph::make_planted_partition(3, 70, 0.25, 0.02, grng);
  MlkpPartitioner tight(MlkpConfig{.imbalance = 0.005, .seed = 4});
  MlkpPartitioner loose(MlkpConfig{.imbalance = 0.25, .seed = 4});
  const Weight tight_cut = edge_cut_weight(g, tight.partition(g, 3));
  const Weight loose_cut = edge_cut_weight(g, loose.partition(g, 3));
  EXPECT_LE(loose_cut, tight_cut + tight_cut / 2 + 5);
}

TEST(Fm, ExactOnTinyWeightedInstance) {
  // 4 vertices: edges (0-1:10) (2-3:10) (1-2:1). Optimal bisection cuts
  // only the weight-1 edge.
  graph::GraphBuilder b;
  b.ensure_vertices(4);
  b.add_edge(0, 1, 10);
  b.add_edge(2, 3, 10);
  b.add_edge(1, 2, 1);
  const Graph g = b.build_undirected();
  util::Rng rng(7);
  // Start from the worst split {0,2} | {1,3}.
  Partition p(4, 2);
  p.assign(0, 0);
  p.assign(1, 1);
  p.assign(2, 0);
  p.assign(3, 1);
  const Weight cut = fm_refine_bisection(g, p, 0.5, FmConfig{}, rng);
  EXPECT_EQ(cut, 1u);
  EXPECT_EQ(p.shard_of(0), p.shard_of(1));
  EXPECT_EQ(p.shard_of(2), p.shard_of(3));
}

TEST(Mlkp, RefinementAblationRefinesBetterOrEqual) {
  util::Rng grng(127);
  const Graph g = graph::make_planted_partition(2, 100, 0.2, 0.02, grng);
  MlkpPartitioner with(MlkpConfig{.refine = true, .seed = 9});
  MlkpPartitioner without(MlkpConfig{.refine = false, .seed = 9});
  const Weight wc = edge_cut_weight(g, with.partition(g, 2));
  const Weight nc = edge_cut_weight(g, without.partition(g, 2));
  EXPECT_LE(wc, nc);
}

// -------------------------------------------------------------------- KL

TEST(KernighanLin, CompleteValidPartition) {
  util::Rng grng(131);
  const Graph g = graph::make_erdos_renyi(150, 0.05, grng);
  KernighanLinPartitioner kl;
  for (std::uint32_t k : {2u, 4u, 8u}) {
    const Partition p = kl.partition(g, k);
    EXPECT_TRUE(p.is_complete());
    for (std::uint64_t s : p.shard_sizes()) EXPECT_GT(s, 0u);
  }
}

TEST(KernighanLin, FindsTwoCliqueCut) {
  const Graph g = graph::make_two_cliques(40, 1);
  KernighanLinPartitioner kl;
  EXPECT_EQ(edge_cut_weight(g, kl.partition(g, 2)), 1u);
}

TEST(KernighanLin, BetterThanHashWorseOrEqualToMlkpOnGrid) {
  const Graph g = graph::make_grid(20, 20);
  const double kl_cut = metrics::static_edge_cut(
      g, KernighanLinPartitioner().partition(g, 2));
  const double hash_cut =
      metrics::static_edge_cut(g, HashPartitioner().partition(g, 2));
  EXPECT_LT(kl_cut, hash_cut);
}

// ------------------------------------------------------------------- BLP

TEST(Blp, ReducesCutWithoutWreckingBalance) {
  util::Rng grng(137);
  const Graph g = graph::make_planted_partition(2, 100, 0.2, 0.02, grng);
  HashPartitioner hp;
  Partition p = hp.partition(g, 2);
  const double bal_before = metrics::dynamic_balance(g, p);
  BalancedLabelPropagation blp(BlpConfig{.rounds = 6});
  const BlpStats stats = blp.refine(g, p);
  EXPECT_LT(stats.cut_after, stats.cut_before);
  EXPECT_EQ(stats.cut_after, edge_cut_weight(g, p));
  const double bal_after = metrics::dynamic_balance(g, p);
  EXPECT_LT(bal_after, std::max(1.3, bal_before * 1.2));
}

TEST(Blp, MovesAreCounted) {
  util::Rng grng(139);
  const Graph g = graph::make_planted_partition(2, 60, 0.3, 0.02, grng);
  HashPartitioner hp;
  Partition p = hp.partition(g, 2);
  const Partition before = p;
  BalancedLabelPropagation blp;
  const BlpStats stats = blp.refine(g, p);
  // stats.moved counts physical movements across rounds (a vertex that
  // bounces counts each time), so it upper-bounds the net displacement.
  EXPECT_GE(stats.moved, count_moves(before, p));
  EXPECT_GT(stats.moved, 0u);
}

TEST(Blp, NoMovesOnPerfectPartition) {
  // Two cliques already split perfectly: every move has negative gain.
  const Graph g = graph::make_two_cliques(20, 1);
  Partition p(20, 2);
  for (Vertex v = 0; v < 20; ++v) p.assign(v, v < 10 ? 0 : 1);
  BalancedLabelPropagation blp;
  const BlpStats stats = blp.refine(g, p);
  EXPECT_EQ(stats.moved, 0u);
  EXPECT_EQ(stats.cut_after, stats.cut_before);
}

TEST(Blp, ProbabilisticVariantAlsoImproves) {
  util::Rng grng(149);
  const Graph g = graph::make_planted_partition(2, 100, 0.25, 0.02, grng);
  HashPartitioner hp;
  Partition p = hp.partition(g, 2);
  BalancedLabelPropagation blp(
      BlpConfig{.rounds = 8, .probabilistic = true, .seed = 3});
  const BlpStats stats = blp.refine(g, p);
  EXPECT_LT(stats.cut_after, stats.cut_before);
}

TEST(Blp, KWayImproves) {
  util::Rng grng(151);
  const Graph g = graph::make_planted_partition(4, 50, 0.3, 0.02, grng);
  HashPartitioner hp;
  Partition p = hp.partition(g, 4);
  BalancedLabelPropagation blp(BlpConfig{.rounds = 8});
  const BlpStats stats = blp.refine(g, p);
  EXPECT_LT(stats.cut_after, stats.cut_before);
}

TEST(Blp, ZeroRebalancePreservesShardWeights) {
  // With rebalance = 0 the oracle only authorizes pairwise-matched mass,
  // so per-shard weight can drift by at most a few candidates' worth.
  util::Rng grng(157);
  const Graph g = graph::make_planted_partition(2, 120, 0.2, 0.02, grng);
  HashPartitioner hp;
  Partition p = hp.partition(g, 2);
  const auto before = p.shard_weights(g);
  BalancedLabelPropagation blp(BlpConfig{.rounds = 6, .rebalance = 0.0});
  blp.refine(g, p);
  const auto after = p.shard_weights(g);
  const double total =
      static_cast<double>(g.total_vertex_weight());
  for (std::size_t s = 0; s < 2; ++s) {
    const double drift = std::abs(static_cast<double>(after[s]) -
                                  static_cast<double>(before[s]));
    EXPECT_LT(drift, 0.10 * total) << "shard " << s;
  }
}

TEST(Blp, ProbabilisticIsDeterministicForFixedSeed) {
  util::Rng grng(163);
  const Graph g = graph::make_planted_partition(2, 80, 0.2, 0.02, grng);
  HashPartitioner hp;
  Partition a = hp.partition(g, 2);
  Partition b = a;
  BalancedLabelPropagation blp_a(
      BlpConfig{.rounds = 4, .probabilistic = true, .seed = 9});
  BalancedLabelPropagation blp_b(
      BlpConfig{.rounds = 4, .probabilistic = true, .seed = 9});
  blp_a.refine(g, a);
  blp_b.refine(g, b);
  EXPECT_EQ(a, b);
}

TEST(KwayRefine, BalanceMovesFlagOffStillReducesCut) {
  util::Rng grng(167);
  const Graph g = graph::make_planted_partition(3, 50, 0.3, 0.02, grng);
  HashPartitioner hp;
  Partition p = hp.partition(g, 3);
  const Weight before = edge_cut_weight(g, p);
  util::Rng rng(13);
  const Weight after = kway_refine(
      g, p, KwayRefineConfig{.balance_moves = false}, rng);
  EXPECT_LT(after, before);
}

TEST(Spectral, WeightedEdgesShapeTheCut) {
  // Two triangles joined by two bridges: one light (w=1), one heavy
  // (w=100). The optimal bisection must cut only the light bridge...
  // but any bisection cuts both or neither; instead weight the intra-
  // cluster edges so the clusters hold together.
  graph::GraphBuilder b;
  b.ensure_vertices(6);
  const Weight heavy = 50;
  b.add_edge(0, 1, heavy);
  b.add_edge(1, 2, heavy);
  b.add_edge(0, 2, heavy);
  b.add_edge(3, 4, heavy);
  b.add_edge(4, 5, heavy);
  b.add_edge(3, 5, heavy);
  b.add_edge(2, 3, 1);  // the only inter-cluster link
  const Graph g = b.build_undirected();
  SpectralPartitioner sp;
  const Partition p = sp.partition(g, 2);
  EXPECT_EQ(edge_cut_weight(g, p), 1u);
  EXPECT_EQ(p.shard_of(0), p.shard_of(2));
  EXPECT_EQ(p.shard_of(3), p.shard_of(5));
}

TEST(Blp, RequiresCompletePartition) {
  const Graph g = graph::make_path(4);
  Partition p(4, 2);  // unassigned
  BalancedLabelPropagation blp;
  EXPECT_THROW(blp.refine(g, p), util::CheckFailure);
}

// -------------------------------------------------------------- ensemble

TEST(Ensemble, NeverWorseThanSingleAttempt) {
  util::Rng grng(601);
  const Graph g = graph::make_barabasi_albert(200, 2, grng);
  auto factory = [](std::uint64_t seed) {
    return std::make_unique<MlkpPartitioner>(MlkpConfig{.seed = seed});
  };
  EnsemblePartitioner ensemble(factory, /*tries=*/4, /*base_seed=*/10);
  const Partition best = ensemble.partition(g, 4);
  const Weight best_cut = edge_cut_weight(g, best);
  EXPECT_EQ(best_cut, ensemble.last_best_cut());

  for (std::uint64_t seed = 10; seed < 14; ++seed) {
    MlkpPartitioner single(MlkpConfig{.seed = seed});
    EXPECT_GE(edge_cut_weight(g, single.partition(g, 4)), best_cut);
  }
}

TEST(Ensemble, SingleTryMatchesInner) {
  const Graph g = graph::make_grid(10, 10);
  auto factory = [](std::uint64_t seed) {
    return std::make_unique<MlkpPartitioner>(MlkpConfig{.seed = seed});
  };
  EnsemblePartitioner ensemble(factory, 1, 42);
  MlkpPartitioner inner(MlkpConfig{.seed = 42});
  EXPECT_EQ(ensemble.partition(g, 2), inner.partition(g, 2));
}

TEST(Ensemble, RejectsBadConfig) {
  auto factory = [](std::uint64_t seed) {
    return std::make_unique<MlkpPartitioner>(MlkpConfig{.seed = seed});
  };
  EXPECT_THROW(EnsemblePartitioner(factory, 0), util::CheckFailure);
  EXPECT_THROW(EnsemblePartitioner(nullptr, 2), util::CheckFailure);
}

// -------------------------------------------------------------- metis io

TEST(MetisIo, GraphRoundTripPreservesStructure) {
  util::Rng grng(501);
  graph::GraphBuilder b;
  b.ensure_vertices(30);
  for (int i = 0; i < 80; ++i) {
    const Vertex u = grng.uniform(30);
    const Vertex v = grng.uniform(30);
    if (u != v) b.add_edge(u, v, 1 + grng.uniform(5));
  }
  for (Vertex v = 0; v < 30; ++v) b.add_vertex_weight(v, grng.uniform(4));
  const Graph g = b.build_undirected();

  std::stringstream buffer;
  write_metis_graph(buffer, g);
  const Graph r = read_metis_graph(buffer);

  ASSERT_EQ(r.num_vertices(), g.num_vertices());
  ASSERT_EQ(r.num_edges(), g.num_edges());
  EXPECT_EQ(r.total_edge_weight(), g.total_edge_weight());
  EXPECT_EQ(r.total_vertex_weight(), g.total_vertex_weight());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(r.vertex_weight(v), g.vertex_weight(v));
    const auto ra = r.neighbors(v);
    const auto ga = g.neighbors(v);
    ASSERT_EQ(ra.size(), ga.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].to, ga[i].to);
      EXPECT_EQ(ra[i].weight, ga[i].weight);
    }
  }
}

TEST(MetisIo, ReadsUnweightedFormat) {
  // The METIS manual's tiny example style: 3-vertex triangle, fmt absent.
  std::istringstream in(
      "% a comment\n"
      "3 3\n"
      "2 3\n"
      "1 3\n"
      "1 2\n");
  const Graph g = read_metis_graph(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.vertex_weight(0), 1u);
  EXPECT_TRUE(g.check_symmetric());
}

TEST(MetisIo, RejectsAsymmetricAdjacency) {
  std::istringstream in(
      "2 1\n"
      "2\n"
      "\n");
  EXPECT_THROW(read_metis_graph(in), util::CheckFailure);
}

TEST(MetisIo, RejectsEdgeCountMismatch) {
  std::istringstream in(
      "3 5\n"
      "2\n"
      "1\n"
      "\n");
  EXPECT_THROW(read_metis_graph(in), util::CheckFailure);
}

TEST(MetisIo, RejectsOutOfRangeNeighbor) {
  std::istringstream in(
      "2 1\n"
      "5\n"
      "1\n");
  EXPECT_THROW(read_metis_graph(in), util::CheckFailure);
}

TEST(MetisIo, PartitionRoundTrip) {
  const Graph g = graph::make_grid(5, 5);
  const Partition p = MlkpPartitioner().partition(g, 3);
  std::stringstream buffer;
  write_metis_partition(buffer, p);
  const Partition r = read_metis_partition(buffer, g.num_vertices(), 3);
  EXPECT_EQ(r, p);
}

TEST(MetisIo, PartitionRejectsWrongLineCount) {
  std::istringstream in("0\n1\n");
  EXPECT_THROW(read_metis_partition(in, 3, 2), util::CheckFailure);
}

TEST(MetisIo, PartitionRejectsOutOfRangeShard) {
  std::istringstream in("0\n7\n");
  EXPECT_THROW(read_metis_partition(in, 2, 2), util::CheckFailure);
}

// --------------------------------------------------------------- quality

TEST(Quality, ReportOnKnownPartition) {
  // 0-1-2-3 path split as {0,1} | {2,3}: 1 cut edge, balanced.
  const Graph g = graph::make_path(4);
  Partition p(4, 2);
  p.assign(0, 0);
  p.assign(1, 0);
  p.assign(2, 1);
  p.assign(3, 1);
  const QualityReport r = evaluate_partition(g, p);
  EXPECT_EQ(r.cut_edges, 1u);
  EXPECT_EQ(r.cut_weight, 1u);
  EXPECT_DOUBLE_EQ(r.edge_cut_fraction, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(r.balance, 1.0);
  EXPECT_EQ(r.boundary_vertices, 2u);       // vertices 1 and 2
  EXPECT_EQ(r.communication_volume, 2u);    // one remote shard each
  EXPECT_EQ(r.shard_sizes, (std::vector<std::uint64_t>{2, 2}));
}

TEST(Quality, CommunicationVolumeCountsDistinctShards) {
  // Star: center 0 with 6 leaves spread over 3 shards. The center sees 2
  // remote shards; each remote leaf sees 1.
  graph::GraphBuilder b;
  b.ensure_vertices(7);
  for (Vertex leaf = 1; leaf <= 6; ++leaf) b.add_edge(0, leaf);
  const Graph g = b.build_undirected();
  Partition p(7, 3);
  p.assign(0, 0);
  for (Vertex leaf = 1; leaf <= 3; ++leaf) p.assign(leaf, 1);
  for (Vertex leaf = 4; leaf <= 6; ++leaf) p.assign(leaf, 2);
  const QualityReport r = evaluate_partition(g, p);
  EXPECT_EQ(r.communication_volume, 2u + 6u);
  EXPECT_EQ(r.boundary_vertices, 7u);
  EXPECT_EQ(r.cut_edges, 6u);
}

TEST(Quality, MatchesMetricFunctions) {
  util::Rng grng(401);
  const Graph g = graph::make_erdos_renyi(80, 0.08, grng);
  const Partition p = HashPartitioner().partition(g, 4);
  const QualityReport r = evaluate_partition(g, p);
  EXPECT_DOUBLE_EQ(r.edge_cut_fraction, metrics::static_edge_cut(g, p));
  EXPECT_DOUBLE_EQ(r.weighted_cut_fraction,
                   metrics::dynamic_edge_cut(g, p));
  EXPECT_DOUBLE_EQ(r.balance, metrics::static_balance(p));
  EXPECT_DOUBLE_EQ(r.weighted_balance, metrics::dynamic_balance(g, p));
  EXPECT_EQ(r.cut_weight, edge_cut_weight(g, p));
  // Communication volume is bounded by cut arc endpoints and at least the
  // boundary (each boundary vertex talks to >= 1 remote shard).
  EXPECT_GE(r.communication_volume, r.boundary_vertices);
  EXPECT_LE(r.communication_volume, 2 * r.cut_edges);
}

TEST(Quality, ToStringMentionsKeyFields) {
  const Graph g = graph::make_path(4);
  Partition p(4, 2, 0);
  p.assign(2, 1);
  p.assign(3, 1);
  const std::string s = to_string(evaluate_partition(g, p));
  EXPECT_NE(s.find("edge-cut"), std::string::npos);
  EXPECT_NE(s.find("communication volume"), std::string::npos);
}

TEST(Quality, RequiresCompletePartition) {
  const Graph g = graph::make_path(3);
  Partition p(3, 2);  // unassigned
  EXPECT_THROW(evaluate_partition(g, p), util::CheckFailure);
}

// -------------------------------------------------------------- spectral

TEST(Spectral, FiedlerSeparatesPathEnds) {
  const Graph g = graph::make_path(20);
  const std::vector<double> f = fiedler_vector(g, SpectralConfig{});
  // The path's Fiedler vector is monotone (cosine profile): the two ends
  // carry opposite signs.
  EXPECT_LT(f.front() * f.back(), 0.0);
  // And the midpoint sits near zero relative to the ends.
  EXPECT_LT(std::abs(f[10]), std::max(std::abs(f.front()),
                                      std::abs(f.back())));
}

TEST(Spectral, FiedlerSeparatesTwoCliques) {
  const Graph g = graph::make_two_cliques(30, 1);
  const std::vector<double> f = fiedler_vector(g, SpectralConfig{});
  // All of clique A on one side of zero, all of clique B on the other.
  int sign_changes_within_a = 0;
  for (int i = 1; i < 15; ++i)
    if (f[static_cast<std::size_t>(i)] * f[0] < 0)
      ++sign_changes_within_a;
  EXPECT_LE(sign_changes_within_a, 1);  // tolerate the bridge vertex
  EXPECT_LT(f[0] * f[20], 0.0);
}

TEST(Spectral, TwoCliquesOptimalCut) {
  const Graph g = graph::make_two_cliques(40, 2);
  SpectralPartitioner sp;
  EXPECT_EQ(edge_cut_weight(g, sp.partition(g, 2)), 2u);
}

TEST(Spectral, GridBisectionNearOptimal) {
  const Graph g = graph::make_grid(12, 12);
  SpectralPartitioner sp;
  const Partition p = sp.partition(g, 2);
  EXPECT_LE(edge_cut_weight(g, p), 18u);  // optimum 12
  const auto sizes = p.shard_sizes();
  EXPECT_NEAR(static_cast<double>(sizes[0]), 72.0, 8.0);
}

TEST(Spectral, KWayContract) {
  util::Rng grng(303);
  const Graph g = graph::make_barabasi_albert(150, 2, grng);
  SpectralPartitioner sp;
  for (std::uint32_t k : {2u, 3u, 5u}) {
    const Partition p = sp.partition(g, k);
    EXPECT_TRUE(p.is_complete());
    for (std::uint64_t s : p.shard_sizes()) EXPECT_GT(s, 0u);
  }
}

TEST(Spectral, WithoutPolishStillValid) {
  const Graph g = graph::make_grid(10, 10);
  SpectralConfig cfg;
  cfg.fm_polish = false;
  SpectralPartitioner sp(cfg);
  const Partition p = sp.partition(g, 2);
  EXPECT_TRUE(p.is_complete());
  EXPECT_LT(metrics::static_edge_cut(g, p), 0.5);
}

// ------------------------------------------------------------- streaming

TEST(Streaming, LdgCompleteAndCapped) {
  util::Rng grng(211);
  const Graph g = graph::make_barabasi_albert(400, 2, grng);
  LdgPartitioner ldg;
  for (std::uint32_t k : {2u, 4u, 8u}) {
    const Partition p = ldg.partition(g, k);
    EXPECT_TRUE(p.is_complete());
    const double cap = 1.1 * 400.0 / k + 1;
    for (std::uint64_t s : p.shard_sizes())
      EXPECT_LE(static_cast<double>(s), cap) << "k=" << k;
  }
}

TEST(Streaming, FennelCompleteAndCapped) {
  util::Rng grng(223);
  const Graph g = graph::make_barabasi_albert(400, 2, grng);
  FennelPartitioner fennel;
  for (std::uint32_t k : {2u, 4u, 8u}) {
    const Partition p = fennel.partition(g, k);
    EXPECT_TRUE(p.is_complete());
    const double cap = 1.1 * 400.0 / k + 1;
    for (std::uint64_t s : p.shard_sizes())
      EXPECT_LE(static_cast<double>(s), cap) << "k=" << k;
  }
}

TEST(Streaming, BothBeatHashingOnStructuredGraphs) {
  const Graph g = graph::make_grid(25, 25);
  const double hash_cut =
      metrics::static_edge_cut(g, HashPartitioner().partition(g, 4));
  const double ldg_cut =
      metrics::static_edge_cut(g, LdgPartitioner().partition(g, 4));
  const double fennel_cut =
      metrics::static_edge_cut(g, FennelPartitioner().partition(g, 4));
  EXPECT_LT(ldg_cut, hash_cut);
  EXPECT_LT(fennel_cut, hash_cut);
}

TEST(Streaming, MlkpBeatsStreaming) {
  // Offline multilevel sees the whole graph and must beat one-pass
  // streaming on a community-structured instance.
  util::Rng grng(227);
  const Graph g = graph::make_planted_partition(4, 50, 0.3, 0.02, grng);
  const double mlkp_cut =
      metrics::static_edge_cut(g, MlkpPartitioner().partition(g, 4));
  const double fennel_cut =
      metrics::static_edge_cut(g, FennelPartitioner().partition(g, 4));
  EXPECT_LE(mlkp_cut, fennel_cut);
}

TEST(Streaming, DegenerateCases) {
  const Graph empty;
  EXPECT_EQ(LdgPartitioner().partition(empty, 4).size(), 0u);
  const Graph path = graph::make_path(5);
  const Partition one = FennelPartitioner().partition(path, 1);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(one.shard_of(v), 0u);
}

TEST(Streaming, AcceptsDirectedInput) {
  graph::GraphBuilder b;
  b.ensure_vertices(20);
  for (Vertex v = 0; v + 1 < 20; ++v) b.add_edge(v, v + 1);
  const Graph d = b.build_directed();
  EXPECT_TRUE(LdgPartitioner().partition(d, 2).is_complete());
  EXPECT_TRUE(FennelPartitioner().partition(d, 2).is_complete());
}

// ----------------------------------------------- cross-method properties

class PartitionerContractTest : public ::testing::TestWithParam<int> {};

TEST_P(PartitionerContractTest, AllPartitionersSatisfyContract) {
  util::Rng grng(160 + GetParam());
  const Graph g = graph::make_barabasi_albert(200, 2, grng);
  std::vector<std::unique_ptr<Partitioner>> methods;
  methods.push_back(std::make_unique<HashPartitioner>());
  methods.push_back(std::make_unique<KernighanLinPartitioner>());
  methods.push_back(std::make_unique<MlkpPartitioner>());
  for (auto& m : methods) {
    for (std::uint32_t k : {2u, 3u, 7u}) {
      const Partition p = m->partition(g, k);
      EXPECT_TRUE(p.is_complete()) << m->name() << " k=" << k;
      EXPECT_EQ(p.size(), g.num_vertices()) << m->name();
      EXPECT_EQ(p.k(), k) << m->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionerContractTest,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace ethshard::partition
