// Streaming per-window telemetry: schema, sequencing, and consistency
// with the end-of-run SimulationResult.
#include "core/telemetry.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/simulator.hpp"
#include "core/strategies.hpp"
#include "util/check.hpp"
#include "workload/generator.hpp"

namespace ethshard::core {
namespace {

// Strict parser for the telemetry subset of JSON: one flat object per
// line, string keys, number/bool values. Returns key -> raw value text
// in document order; fails the test on any syntax error.
std::vector<std::pair<std::string, std::string>> parse_line(
    const std::string& line) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t i = 0;
  auto fail = [&](const char* what) {
    ADD_FAILURE() << what << " at offset " << i << " in: " << line;
  };
  auto skip_ws = [&] {
    while (i < line.size() && line[i] == ' ') ++i;
  };
  if (i >= line.size() || line[i] != '{') {
    fail("expected '{'");
    return out;
  }
  ++i;
  while (true) {
    skip_ws();
    if (i >= line.size() || line[i] != '"') {
      fail("expected key quote");
      return out;
    }
    const std::size_t key_end = line.find('"', i + 1);
    if (key_end == std::string::npos) {
      fail("unterminated key");
      return out;
    }
    std::string key = line.substr(i + 1, key_end - i - 1);
    i = key_end + 1;
    skip_ws();
    if (i >= line.size() || line[i] != ':') {
      fail("expected ':'");
      return out;
    }
    ++i;
    skip_ws();
    const std::size_t value_start = i;
    while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
    if (i >= line.size()) {
      fail("unterminated value");
      return out;
    }
    std::string value = line.substr(value_start, i - value_start);
    while (!value.empty() && value.back() == ' ') value.pop_back();
    if (value.empty()) {
      fail("empty value");
      return out;
    }
    out.emplace_back(std::move(key), std::move(value));
    if (line[i] == '}') break;
    ++i;  // consume ','
  }
  if (i + 1 != line.size()) fail("trailing content after '}'");
  return out;
}

std::map<std::string, std::string> as_map(
    const std::vector<std::pair<std::string, std::string>>& kv) {
  return {kv.begin(), kv.end()};
}

workload::History small_history() {
  workload::GeneratorConfig cfg;
  cfg.scale = 0.0005;
  cfg.seed = 42;
  return workload::EthereumHistoryGenerator(cfg).generate();
}

struct TelemetryRun {
  SimulationResult result;
  std::vector<std::string> lines;
};

TelemetryRun run_with_telemetry(Method method) {
  const workload::History history = small_history();
  const auto strategy = make_strategy(method, /*seed=*/5);
  std::ostringstream out;
  TelemetrySink sink(out);
  SimulatorConfig cfg;
  cfg.k = 2;
  cfg.telemetry = &sink;
  ShardingSimulator sim(history, *strategy, cfg);
  TelemetryRun run;
  run.result = sim.run();
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) run.lines.push_back(line);
  EXPECT_EQ(run.lines.size(), sink.records_written());
  return run;
}

TEST(Telemetry, EveryLineParsesWithFixedKeyOrder) {
  const TelemetryRun run = run_with_telemetry(Method::kHashing);
  ASSERT_FALSE(run.lines.empty());
  const std::vector<std::string> want_keys = {
      "v",          "seq",
      "window_start", "window_end",
      "interactions", "recorded",
      "dynamic_edge_cut", "dynamic_balance",
      "static_edge_cut",  "static_balance",
      "window_wall_ms",   "repartition",
      "partitioner_ms",   "moves",
      "moved_state_units", "rss_mb",
      "peak_rss_mb"};
  for (std::size_t i = 0; i < run.lines.size(); ++i) {
    const auto kv = parse_line(run.lines[i]);
    ASSERT_EQ(kv.size(), want_keys.size()) << run.lines[i];
    for (std::size_t j = 0; j < want_keys.size(); ++j)
      EXPECT_EQ(kv[j].first, want_keys[j]) << run.lines[i];
    const auto m = as_map(kv);
    EXPECT_EQ(m.at("v"), "1");
    EXPECT_EQ(m.at("seq"), std::to_string(i));
  }
}

TEST(Telemetry, RecordedLinesMatchSimulationResult) {
  const TelemetryRun run = run_with_telemetry(Method::kHashing);
  const SimulationResult& r = run.result;
  std::size_t recorded = 0;
  for (const std::string& line : run.lines) {
    const auto m = as_map(parse_line(line));
    const std::uint64_t start = std::stoull(m.at("window_start"));
    const std::uint64_t end = std::stoull(m.at("window_end"));
    EXPECT_LT(start, end);
    EXPECT_GE(std::stod(m.at("window_wall_ms")), 0.0);
    if (m.at("recorded") != "true") {
      EXPECT_EQ(m.at("interactions"), "0");
      continue;
    }
    ASSERT_LT(recorded, r.windows.size());
    const WindowSample& w = r.windows[recorded];
    EXPECT_EQ(start, w.window_start);
    EXPECT_EQ(end, w.window_end);
    EXPECT_EQ(std::stoull(m.at("interactions")), w.interactions);
    EXPECT_NEAR(std::stod(m.at("dynamic_edge_cut")), w.dynamic_edge_cut,
                1e-5);
    EXPECT_NEAR(std::stod(m.at("dynamic_balance")), w.dynamic_balance,
                1e-5);
    EXPECT_NEAR(std::stod(m.at("static_edge_cut")), w.static_edge_cut,
                1e-5);
    EXPECT_NEAR(std::stod(m.at("static_balance")), w.static_balance,
                1e-5);
    ++recorded;
  }
  EXPECT_EQ(recorded, r.windows.size());
}

TEST(Telemetry, RepartitionRecordsCarryEventFields) {
  const TelemetryRun run = run_with_telemetry(Method::kRMetis);
  const SimulationResult& r = run.result;
  ASSERT_FALSE(r.repartitions.empty())
      << "R-METIS should repartition on this history";
  std::size_t events = 0;
  for (const std::string& line : run.lines) {
    const auto m = as_map(parse_line(line));
    if (m.at("repartition") != "true") {
      EXPECT_EQ(m.at("moves"), "0");
      EXPECT_EQ(m.at("moved_state_units"), "0");
      continue;
    }
    ASSERT_LT(events, r.repartitions.size());
    const RepartitionEvent& ev = r.repartitions[events];
    EXPECT_EQ(std::stoull(m.at("window_end")), ev.time);
    EXPECT_EQ(std::stoull(m.at("moves")), ev.moves);
    EXPECT_EQ(std::stoull(m.at("moved_state_units")),
              ev.moved_state_units);
    EXPECT_NEAR(std::stod(m.at("partitioner_ms")), ev.compute_ms, 1e-5);
    ++events;
  }
  EXPECT_EQ(events, r.repartitions.size());
}

// A strategy whose compute_partition stalls, to pin down where the
// repartition's wall-clock cost lands in the telemetry stream.
class SlowRepartitionStrategy final : public ShardingStrategy {
 public:
  explicit SlowRepartitionStrategy(std::chrono::milliseconds stall)
      : stall_(stall) {}

  std::string name() const override { return "slow"; }

  partition::ShardId place(graph::Vertex v,
                           std::span<const partition::ShardId>,
                           const SimulatorEnv& env) override {
    return static_cast<partition::ShardId>(v % env.k());
  }

  bool should_repartition(const WindowSnapshot& snapshot,
                          const SimulatorEnv&) override {
    if (fired_ || snapshot.interactions == 0) return false;
    fired_ = true;
    return true;
  }

  partition::Partition compute_partition(const SimulatorEnv& env) override {
    std::this_thread::sleep_for(stall_);
    partition::Partition p(env.current_partition().size(), env.k());
    for (graph::Vertex v = 0; v < p.size(); ++v)
      p.assign(v, static_cast<partition::ShardId>(v % env.k()));
    return p;
  }

 private:
  std::chrono::milliseconds stall_;
  bool fired_ = false;
};

// Regression guard: the cost of computing a repartition must be reported
// as that window's partitioner_ms, never leak into any window_wall_ms
// (the old code restarted the window clock *before* repartitioning, so
// the stall was misattributed to the following window's replay cost).
TEST(Telemetry, RepartitionCostNotChargedToNextWindow) {
  const auto stall = std::chrono::milliseconds(400);
  const workload::History history = small_history();
  SlowRepartitionStrategy strategy(stall);
  std::ostringstream out;
  TelemetrySink sink(out);
  SimulatorConfig cfg;
  cfg.k = 2;
  cfg.telemetry = &sink;
  ShardingSimulator sim(history, strategy, cfg);
  const SimulationResult result = sim.run();
  ASSERT_EQ(result.repartitions.size(), 1u);
  EXPECT_GE(result.repartitions[0].compute_ms, 350.0);

  std::istringstream in(out.str());
  std::string line;
  bool saw_repartition = false;
  while (std::getline(in, line)) {
    const auto m = as_map(parse_line(line));
    if (m.at("repartition") == "true") {
      saw_repartition = true;
      EXPECT_GE(std::stod(m.at("partitioner_ms")), 350.0);
    }
    // No window's replay wall clock should come anywhere near the stall:
    // this small history replays in well under 100ms total.
    EXPECT_LT(std::stod(m.at("window_wall_ms")), 200.0) << line;
  }
  EXPECT_TRUE(saw_repartition);
}

TEST(Telemetry, OpenWritesFileAndRefusesBadPath) {
  const std::string path =
      testing::TempDir() + "/ethshard_telemetry_test.jsonl";
  {
    auto sink = TelemetrySink::open(path);
    WindowTelemetry w;
    w.window_start = 10;
    w.window_end = 20;
    w.interactions = 3;
    sink->write_window(w);
    EXPECT_EQ(sink->records_written(), 1u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const auto m = as_map(parse_line(line));
  EXPECT_EQ(m.at("window_start"), "10");
  EXPECT_EQ(m.at("window_end"), "20");
  EXPECT_EQ(m.at("interactions"), "3");
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());

  EXPECT_THROW(TelemetrySink::open("/nonexistent-dir/x/y.jsonl"),
               util::CheckFailure);
}

}  // namespace
}  // namespace ethshard::core
