# Memory-budget smoke test of the streaming BlockSource path, run by
# ctest on Linux:
#
#   1. probe the peak RSS of `simulate --stream` and of the materialized
#      `simulate` on the same workload,
#   2. require the streamed peak to sit measurably below the materialized
#      one (that gap is the point of the API),
#   3. pick a cap between the two and check the CLI's --max-rss-mb
#      enforcement from both sides: streaming fits, materialized fails.
#
# The cap is derived from the probes instead of hard-coded so the test
# tracks allocator/libc differences across hosts rather than flaking on
# them; and because peak RSS is still a measurement of a live process,
# the enforcement round gets one retry with freshly probed peaks before
# the test declares failure. Each run's verdict comes from the CLI's
# --verdict-out JSON (the scenario-report schema, kind "rss_budget") —
# parsed with string(JSON), not grepped out of stdout. Usage:
#   cmake -DCLI=<path-to-ethshard> -DWORKDIR=<scratch> -P memory_smoke.cmake

if(NOT DEFINED CLI OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "memory_smoke.cmake needs -DCLI=... and -DWORKDIR=...")
endif()
if(CMAKE_VERSION VERSION_LESS 3.19)
  message(FATAL_ERROR "memory_smoke.cmake needs cmake >= 3.19 (string(JSON))")
endif()
file(MAKE_DIRECTORY "${WORKDIR}")

# Large enough that the materialized chain dominates the process
# baseline, small enough to finish in seconds on one core.
set(WORKLOAD --preset paper --scale 0.02 --seed 5 --method Hashing
    --shards 4)

# Runs `ethshard simulate --verdict-out` and parses the rss_budget
# verdict: ${outvar} gets the observed peak (integer MiB), ${outvar}_rc
# the exit code, ${outvar}_pass the verdict's pass flag, ${outvar}_out
# the combined stdout/stderr for error reporting.
function(run_simulate outvar)
  set(verdict "${WORKDIR}/${outvar}.json")
  file(REMOVE "${verdict}")
  execute_process(
    COMMAND ${CLI} simulate ${WORKLOAD} --verdict-out ${verdict} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  set(${outvar}_rc "${rc}" PARENT_SCOPE)
  set(${outvar}_out "${out}\n${err}" PARENT_SCOPE)
  set(${outvar} "" PARENT_SCOPE)
  set(${outvar}_pass "" PARENT_SCOPE)
  if(NOT EXISTS "${verdict}")
    return()
  endif()
  file(READ "${verdict}" report)
  string(JSON schema ERROR_VARIABLE jerr GET "${report}" schema_version)
  if(NOT jerr STREQUAL "NOTFOUND" OR NOT schema EQUAL 1)
    message(FATAL_ERROR
      "unexpected verdict schema (version '${schema}', error '${jerr}') "
      "in ${verdict}")
  endif()
  string(JSON v GET "${report}" scenarios 0 runs 0 invariants 0)
  string(JSON kind GET "${v}" kind)
  if(NOT kind STREQUAL "rss_budget")
    message(FATAL_ERROR "expected an rss_budget verdict, got '${kind}'")
  endif()
  string(JSON observed GET "${v}" observed)
  string(JSON vpass GET "${v}" pass)
  # Integer MiB is plenty for the cap arithmetic below.
  set(peak_int 0)
  string(REGEX MATCH "^[0-9]+" peak_int "${observed}")
  set(${outvar} "${peak_int}" PARENT_SCOPE)
  set(${outvar}_pass "${vpass}" PARENT_SCOPE)
endfunction()

# One probe + enforcement round. Sets round_ok/round_why in the caller.
function(budget_round)
  set(round_ok FALSE PARENT_SCOPE)

  run_simulate(stream_peak --stream)
  if(NOT stream_peak_rc EQUAL 0)
    message(FATAL_ERROR
      "streaming probe failed (rc=${stream_peak_rc}):\n${stream_peak_out}")
  endif()
  if(stream_peak STREQUAL "" OR stream_peak EQUAL 0)
    # /proc peak accounting unavailable (container seccomp, exotic
    # kernel): the budget mechanism degrades to "cannot measure", not
    # wrong numbers.
    message(STATUS "peak RSS unavailable on this host; skipping budget checks")
    set(round_ok TRUE PARENT_SCOPE)
    set(round_why "unmeasurable" PARENT_SCOPE)
    return()
  endif()

  run_simulate(mat_peak)
  if(NOT mat_peak_rc EQUAL 0)
    message(FATAL_ERROR
      "materialized probe failed (rc=${mat_peak_rc}):\n${mat_peak_out}")
  endif()
  if(mat_peak STREQUAL "")
    message(FATAL_ERROR
      "materialized probe wrote no verdict:\n${mat_peak_out}")
  endif()

  message(STATUS
    "peak RSS: streaming ${stream_peak} MiB, materialized ${mat_peak} MiB")

  # The streamed replay must actually be lighter — a healthy margin, not
  # just noise (8 MiB floor guards tiny-workload rounding).
  math(EXPR min_materialized "${stream_peak} + (${stream_peak} / 8) + 8")
  if(mat_peak LESS ${min_materialized})
    set(round_why
      "streaming saved no memory: streamed peak ${stream_peak} MiB vs \
materialized ${mat_peak} MiB (needed >= ${min_materialized} MiB)"
      PARENT_SCOPE)
    return()
  endif()

  math(EXPR cap "(${stream_peak} + ${mat_peak}) / 2")
  message(STATUS "enforcing --max-rss-mb ${cap}")

  run_simulate(under --stream --max-rss-mb ${cap})
  if(NOT under_rc EQUAL 0 OR NOT under_pass STREQUAL "ON")
    set(round_why
      "streaming simulate exceeded --max-rss-mb ${cap} \
(rc=${under_rc}, verdict pass='${under_pass}'):\n${under_out}"
      PARENT_SCOPE)
    return()
  endif()

  run_simulate(over --max-rss-mb ${cap})
  if(over_rc EQUAL 0)
    set(round_why
      "materialized simulate (peak ~${mat_peak} MiB) passed under \
--max-rss-mb ${cap}; the budget enforcement is not engaging:\n${over_out}"
      PARENT_SCOPE)
    return()
  endif()
  if(NOT over_pass STREQUAL "OFF")
    set(round_why
      "materialized run failed without a failing rss_budget verdict \
(rc=${over_rc}, verdict pass='${over_pass}'):\n${over_out}"
      PARENT_SCOPE)
    return()
  endif()

  set(round_ok TRUE PARENT_SCOPE)
  set(round_why
    "${stream_peak} MiB streamed < cap ${cap} < ${mat_peak} MiB materialized"
    PARENT_SCOPE)
endfunction()

# Peak-RSS numbers wobble with allocator arena timing; one re-probe with
# a fresh cap separates a noisy borderline round from a real regression.
budget_round()
if(NOT round_ok)
  message(STATUS "budget round failed (${round_why}); retrying once")
  budget_round()
endif()
if(NOT round_ok)
  message(FATAL_ERROR "memory smoke failed after retry: ${round_why}")
endif()
message(STATUS "memory smoke passed: ${round_why}")
