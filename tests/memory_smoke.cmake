# Memory-budget smoke test of the streaming BlockSource path, run by
# ctest on Linux:
#
#   1. probe the peak RSS of `simulate --stream` and of the materialized
#      `simulate` on the same workload,
#   2. require the streamed peak to sit measurably below the materialized
#      one (that gap is the point of the API),
#   3. pick a cap between the two and check the CLI's --max-rss-mb
#      enforcement from both sides: streaming fits, materialized fails.
#
# The cap is derived from the probes instead of hard-coded so the test
# tracks allocator/libc differences across hosts rather than flaking on
# them. Usage:
#   cmake -DCLI=<path-to-ethshard> -DWORKDIR=<scratch> -P memory_smoke.cmake

if(NOT DEFINED CLI OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "memory_smoke.cmake needs -DCLI=... and -DWORKDIR=...")
endif()
file(MAKE_DIRECTORY "${WORKDIR}")

# Large enough that the materialized chain dominates the process
# baseline, small enough to finish in seconds on one core.
set(WORKLOAD --preset paper --scale 0.02 --seed 5 --method Hashing
    --shards 4)

# Runs `ethshard simulate` and parses the "peak rss mb" stdout line into
# ${outvar} (integer MiB). rc and full output land in ${outvar}_rc /
# ${outvar}_out for the enforcement checks.
function(run_simulate outvar)
  execute_process(
    COMMAND ${CLI} simulate ${WORKLOAD} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  set(${outvar}_rc "${rc}" PARENT_SCOPE)
  set(${outvar}_out "${out}\n${err}" PARENT_SCOPE)
  if(out MATCHES "peak rss mb +([0-9]+)")
    set(${outvar} "${CMAKE_MATCH_1}" PARENT_SCOPE)
  else()
    set(${outvar} "" PARENT_SCOPE)
  endif()
endfunction()

# --- probes -----------------------------------------------------------

run_simulate(stream_peak --stream)
if(NOT stream_peak_rc EQUAL 0)
  message(FATAL_ERROR "streaming probe failed (rc=${stream_peak_rc}):\n${stream_peak_out}")
endif()
if(stream_peak STREQUAL "" OR stream_peak EQUAL 0)
  # /proc peak accounting unavailable (container seccomp, exotic kernel):
  # the budget mechanism degrades to "cannot measure", not wrong numbers.
  message(STATUS "peak RSS unavailable on this host; skipping budget checks")
  return()
endif()

run_simulate(mat_peak)
if(NOT mat_peak_rc EQUAL 0)
  message(FATAL_ERROR "materialized probe failed (rc=${mat_peak_rc}):\n${mat_peak_out}")
endif()
if(mat_peak STREQUAL "")
  message(FATAL_ERROR "materialized probe printed no peak rss line:\n${mat_peak_out}")
endif()

message(STATUS "peak RSS: streaming ${stream_peak} MiB, materialized ${mat_peak} MiB")

# The streamed replay must actually be lighter — a healthy margin, not
# just noise (8 MiB floor guards tiny-workload rounding).
math(EXPR min_materialized "${stream_peak} + (${stream_peak} / 8) + 8")
if(mat_peak LESS ${min_materialized})
  message(FATAL_ERROR
    "streaming saved no memory: streamed peak ${stream_peak} MiB vs "
    "materialized ${mat_peak} MiB (needed >= ${min_materialized} MiB)")
endif()

# --- enforcement ------------------------------------------------------

math(EXPR cap "(${stream_peak} + ${mat_peak}) / 2")
message(STATUS "enforcing --max-rss-mb ${cap}")

run_simulate(under --stream --max-rss-mb ${cap})
if(NOT under_rc EQUAL 0)
  message(FATAL_ERROR
    "streaming simulate exceeded --max-rss-mb ${cap} (rc=${under_rc}):\n${under_out}")
endif()
if(NOT under_out MATCHES "within --max-rss-mb")
  message(FATAL_ERROR
    "streaming run did not report its budget check:\n${under_out}")
endif()

run_simulate(over --max-rss-mb ${cap})
if(over_rc EQUAL 0)
  message(FATAL_ERROR
    "materialized simulate (peak ~${mat_peak} MiB) passed under "
    "--max-rss-mb ${cap}; the budget enforcement is not engaging:\n${over_out}")
endif()
if(NOT over_out MATCHES "exceeded --max-rss-mb")
  message(FATAL_ERROR
    "materialized run failed for the wrong reason (rc=${over_rc}):\n${over_out}")
endif()

message(STATUS "memory smoke passed: ${stream_peak} MiB streamed < cap "
  "${cap} < ${mat_peak} MiB materialized")
