// Scenario harness unit tests: the file grammar, the workload-override
// composition, and — most importantly — each invariant evaluator tripped
// by hand-written telemetry records, plus a golden pass case. The
// evaluators gate CI through the scenario matrix, so each failure mode
// is pinned here at the unit level first.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/telemetry.hpp"
#include "scenario/invariants.hpp"
#include "scenario/report.hpp"
#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"
#include "util/check.hpp"
#include "util/sim_time.hpp"
#include "workload/overrides.hpp"

namespace ethshard::scenario {
namespace {

// --- scenario parsing --------------------------------------------------

TEST(ScenarioParse, DefaultsAndNameHint) {
  const Scenario s = parse_scenario_text("", "from_stem");
  EXPECT_EQ(s.name, "from_stem");
  EXPECT_EQ(s.preset, workload::Preset::kPaper);
  EXPECT_EQ(s.shards, 4u);
  EXPECT_EQ(s.strategies.size(), 5u);  // the paper's five families
  EXPECT_TRUE(s.sanity);
  EXPECT_FALSE(s.balance_max.has_value());
}

TEST(ScenarioParse, FullGrammar) {
  const std::string text = R"(
# comment line
name = storm            # trailing comment
description = a storm
preset = no-attack
scale = 0.004
seed = 99
shards = 8
load_model = gas
metric_window_hours = 12
strategies = hashing, metis
strategy_seed = 3
workload.attack_fraction = 0.5
gap_start = 2016-02-01
gap_days = 30
invariant.balance_max = 2.5
invariant.balance_min_interactions = 10
invariant.move_fraction_max = 1.25
invariant.repartition_ms_max = 500
invariant.sanity = false
invariant.drift_golden = golden/storm
)";
  const Scenario s = parse_scenario_text(text, "ignored");
  EXPECT_EQ(s.name, "storm");
  EXPECT_EQ(s.description, "a storm");
  EXPECT_EQ(s.preset, workload::Preset::kNoAttack);
  EXPECT_DOUBLE_EQ(s.scale, 0.004);
  EXPECT_EQ(s.seed, 99u);
  EXPECT_EQ(s.shards, 8u);
  EXPECT_EQ(s.load_model, core::LoadModel::kGas);
  EXPECT_EQ(s.metric_window, 12 * util::kHour);
  ASSERT_EQ(s.strategies.size(), 2u);
  EXPECT_EQ(s.strategies[0], "hashing");
  EXPECT_EQ(s.strategies[1], "metis");
  EXPECT_EQ(s.strategy_seed, 3u);
  ASSERT_EQ(s.workload_overrides.size(), 1u);
  EXPECT_EQ(s.workload_overrides[0].first, "attack_fraction");
  EXPECT_EQ(s.gap_start, util::make_timestamp(2016, 2, 1));
  EXPECT_DOUBLE_EQ(s.gap_days, 30.0);
  ASSERT_TRUE(s.balance_max.has_value());
  EXPECT_DOUBLE_EQ(*s.balance_max, 2.5);
  EXPECT_EQ(s.balance_min_interactions, 10u);
  EXPECT_DOUBLE_EQ(*s.move_fraction_max, 1.25);
  EXPECT_DOUBLE_EQ(*s.repartition_ms_max, 500.0);
  EXPECT_FALSE(s.sanity);
  EXPECT_EQ(s.drift_golden, "golden/storm");
}

TEST(ScenarioParse, RejectsUnknownAndMalformed) {
  EXPECT_THROW(parse_scenario_text("bogus_key = 1", "x"),
               util::CheckFailure);
  EXPECT_THROW(parse_scenario_text("scale", "x"), util::CheckFailure);
  EXPECT_THROW(parse_scenario_text("scale = not_a_number", "x"),
               util::CheckFailure);
  EXPECT_THROW(parse_scenario_text("shards = 1", "x"), util::CheckFailure);
  // Workload overrides are validated at parse time, naming typos early.
  EXPECT_THROW(parse_scenario_text("workload.attack_fractoin = 0.5", "x"),
               util::CheckFailure);
}

TEST(ScenarioParse, GeneratorConfigComposesPresetAndOverrides) {
  Scenario s = parse_scenario_text(
      "preset = no-attack\n"
      "scale = 0.004\n"
      "seed = 7\n"
      "workload.p_new_sender = 0.42\n",
      "combo");
  const workload::GeneratorConfig cfg = generator_config(s);
  EXPECT_DOUBLE_EQ(cfg.scale, 0.004);
  EXPECT_EQ(cfg.seed, 7u);
  EXPECT_DOUBLE_EQ(cfg.attack_fraction, 0.0);  // from the preset
  EXPECT_DOUBLE_EQ(cfg.p_new_sender, 0.42);    // from the override
}

TEST(ScenarioParse, TimelineValidatedAfterWholeOverrideSequence) {
  // Legal end state reached through an illegal intermediate one: the
  // collapsed attack must be applied before the shortened end works.
  Scenario s = parse_scenario_text(
      "workload.model.attack_start = 2015-10-01\n"
      "workload.model.attack_end = 2015-10-01\n"
      "workload.model.end = 2016-01-31\n",
      "short");
  EXPECT_NO_THROW(generator_config(s));

  Scenario broken = parse_scenario_text(
      "workload.model.end = 2016-01-31\n",  // before the default attack
      "broken");
  EXPECT_THROW(generator_config(broken), util::CheckFailure);
}

// --- invariant evaluators ----------------------------------------------

core::WindowTelemetry window(std::uint64_t start, std::uint64_t end,
                             std::uint64_t interactions) {
  core::WindowTelemetry w;
  w.window_start = start;
  w.window_end = end;
  w.interactions = interactions;
  w.recorded = interactions > 0;
  w.dynamic_balance = interactions > 0 ? 1.0 : 0.0;
  w.static_balance = 1.0;
  return w;
}

core::SimulationResult result_with(std::uint64_t interactions,
                                   std::uint64_t vertices,
                                   std::uint64_t total_moves) {
  core::SimulationResult r;
  r.interactions = interactions;
  r.vertices = vertices;
  r.total_moves = total_moves;
  return r;
}

TEST(BalanceInvariant, TripsOnBreachAboveFloor) {
  auto inv = make_balance_invariant(2.0, /*min_interactions=*/10);
  auto w = window(0, 100, 50);
  w.dynamic_balance = 1.5;
  inv->on_window(w);
  w = window(100, 200, 50);
  w.window_start = 100;
  w.dynamic_balance = 3.5;  // breach
  inv->on_window(w);
  const InvariantVerdict v = inv->verdict();
  EXPECT_EQ(v.kind, "balance");
  EXPECT_FALSE(v.pass);
  EXPECT_DOUBLE_EQ(v.observed, 3.5);
  EXPECT_EQ(v.window_start, 100);
  EXPECT_FALSE(v.detail.empty());
}

TEST(BalanceInvariant, FloorExemptsSparseWindows) {
  auto inv = make_balance_invariant(2.0, /*min_interactions=*/10);
  auto w = window(0, 100, 3);  // below the floor
  w.dynamic_balance = 4.0;     // would breach, but the window is noise
  inv->on_window(w);
  EXPECT_TRUE(inv->verdict().pass);
}

TEST(ChurnInvariant, TripsOnMoveBound) {
  auto inv = make_churn_invariant(2.0);
  inv->on_run_end(result_with(1000, 100, 350));  // 3.5 moves per vertex
  const InvariantVerdict v = inv->verdict();
  EXPECT_EQ(v.kind, "churn");
  EXPECT_FALSE(v.pass);
  EXPECT_DOUBLE_EQ(v.observed, 3.5);

  auto ok = make_churn_invariant(2.0);
  ok->on_run_end(result_with(1000, 100, 150));
  EXPECT_TRUE(ok->verdict().pass);
}

TEST(RepartitionTimeInvariant, TripsOnWallTimeBound) {
  auto inv = make_repartition_time_invariant(100.0);
  auto w = window(0, 100, 10);
  w.repartition = true;
  w.partitioner_ms = 250.0;  // breach
  w.moves = 1;
  w.moved_state_units = 1;
  inv->on_window(w);
  const InvariantVerdict v = inv->verdict();
  EXPECT_EQ(v.kind, "repartition_time");
  EXPECT_FALSE(v.pass);
  EXPECT_DOUBLE_EQ(v.observed, 250.0);

  // Non-repartition windows are never charged.
  auto ok = make_repartition_time_invariant(100.0);
  auto quiet = window(0, 100, 10);
  quiet.partitioner_ms = 0.0;
  ok->on_window(quiet);
  EXPECT_TRUE(ok->verdict().pass);
}

// A tiny golden stream in the sink's own serialization, so the drift
// test exercises the real parse→compare path end to end.
std::string golden_lines(const std::vector<core::WindowTelemetry>& ws) {
  std::ostringstream os;
  core::TelemetrySink sink(os);
  for (const auto& w : ws) sink.write_window(w);
  return os.str();
}

TEST(DriftInvariant, PassesOnIdenticalStream) {
  const std::vector<core::WindowTelemetry> ws = {window(0, 100, 10),
                                                 window(100, 200, 20)};
  auto inv = make_drift_invariant(golden_lines(ws), "test-golden");
  for (const auto& w : ws) inv->on_window(w);
  inv->on_run_end(result_with(30, 5, 0));
  const InvariantVerdict v = inv->verdict();
  EXPECT_EQ(v.kind, "drift");
  EXPECT_TRUE(v.pass) << v.detail;
}

TEST(DriftInvariant, IgnoresWallClockFields) {
  std::vector<core::WindowTelemetry> ws = {window(0, 100, 10)};
  auto inv = make_drift_invariant(golden_lines(ws), "test-golden");
  ws[0].window_wall_ms = 9999.0;  // measurement, not a result
  ws[0].rss_mb = 123.0;
  ws[0].peak_rss_mb = 456.0;
  inv->on_window(ws[0]);
  inv->on_run_end(result_with(10, 5, 0));
  EXPECT_TRUE(inv->verdict().pass) << inv->verdict().detail;
}

TEST(DriftInvariant, TripsOnMetricDivergence) {
  std::vector<core::WindowTelemetry> ws = {window(0, 100, 10)};
  auto inv = make_drift_invariant(golden_lines(ws), "test-golden");
  ws[0].dynamic_balance += 0.001;  // well past the 1e-6 tolerance
  inv->on_window(ws[0]);
  const InvariantVerdict v = inv->verdict();
  EXPECT_FALSE(v.pass);
  EXPECT_NE(v.detail.find("dynamic_balance"), std::string::npos) << v.detail;
}

TEST(DriftInvariant, TripsOnLengthMismatch) {
  const std::vector<core::WindowTelemetry> ws = {window(0, 100, 10),
                                                 window(100, 200, 20)};
  auto inv = make_drift_invariant(golden_lines(ws), "test-golden");
  inv->on_window(ws[0]);  // stream ends one window early
  inv->on_run_end(result_with(10, 5, 0));
  EXPECT_FALSE(inv->verdict().pass);
}

TEST(SanityInvariant, PassesOnWellFormedStream) {
  auto inv = make_sanity_invariant();
  inv->on_window(window(0, 100, 10));
  inv->on_window(window(100, 200, 20));
  inv->on_run_end(result_with(30, 5, 0));
  const InvariantVerdict v = inv->verdict();
  EXPECT_EQ(v.kind, "sanity");
  EXPECT_TRUE(v.pass) << v.detail;
}

TEST(SanityInvariant, TripsOnClockGoingBackwards) {
  auto inv = make_sanity_invariant();
  inv->on_window(window(100, 200, 10));
  inv->on_window(window(0, 100, 10));  // overlaps predecessor
  inv->on_run_end(result_with(20, 5, 0));
  EXPECT_FALSE(inv->verdict().pass);
}

TEST(SanityInvariant, TripsOnInteractionSumMismatch) {
  auto inv = make_sanity_invariant(/*expect_full_stream=*/true);
  inv->on_window(window(0, 100, 10));
  inv->on_run_end(result_with(99, 5, 0));  // run claims more than streamed
  const InvariantVerdict v = inv->verdict();
  EXPECT_FALSE(v.pass);
  EXPECT_NE(v.detail.find("interactions"), std::string::npos) << v.detail;
}

TEST(SanityInvariant, TripsOnMovesWithoutRepartition) {
  auto inv = make_sanity_invariant();
  auto w = window(0, 100, 10);
  w.moves = 5;  // but repartition == false
  w.moved_state_units = 5;
  inv->on_window(w);
  inv->on_run_end(result_with(10, 5, 5));
  EXPECT_FALSE(inv->verdict().pass);
}

TEST(InvariantSet, FansOutAndCollects) {
  InvariantSet set;
  set.add(make_balance_invariant(2.0, 1));
  set.add(make_sanity_invariant());
  auto w = window(0, 100, 10);
  w.dynamic_balance = 3.0;  // balance breach, sanity fine
  set.on_window(w);
  set.on_run_end(result_with(10, 5, 0));
  EXPECT_EQ(set.windows_seen(), 1u);
  const auto verdicts = set.verdicts();
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_FALSE(verdicts[0].pass);
  EXPECT_TRUE(verdicts[1].pass);
}

// --- telemetry line round-trip -----------------------------------------

TEST(TelemetryLine, RoundTripsThroughSinkSerialization) {
  core::WindowTelemetry w = window(400, 800, 123);
  w.dynamic_edge_cut = 0.25;
  w.dynamic_balance = 1.75;
  w.repartition = true;
  w.partitioner_ms = 12.5;
  w.moves = 7;
  w.moved_state_units = 21;
  const std::string line = golden_lines({w});
  const core::WindowTelemetry back = parse_telemetry_line(line);
  EXPECT_EQ(back.window_start, w.window_start);
  EXPECT_EQ(back.window_end, w.window_end);
  EXPECT_EQ(back.interactions, w.interactions);
  EXPECT_EQ(back.recorded, w.recorded);
  EXPECT_NEAR(back.dynamic_edge_cut, w.dynamic_edge_cut, 1e-6);
  EXPECT_NEAR(back.dynamic_balance, w.dynamic_balance, 1e-6);
  EXPECT_EQ(back.repartition, w.repartition);
  EXPECT_NEAR(back.partitioner_ms, w.partitioner_ms, 1e-6);
  EXPECT_EQ(back.moves, w.moves);
  EXPECT_EQ(back.moved_state_units, w.moved_state_units);
  EXPECT_THROW(parse_telemetry_line("{\"v\": 1}"), util::CheckFailure);
}

// --- report schema ------------------------------------------------------

TEST(Report, JsonCarriesTotalsAndPassFlag) {
  Report report;
  ScenarioReport& sc = report.scenarios.emplace_back();
  sc.name = "s1";
  StrategyRunReport& run = sc.runs.emplace_back();
  run.strategy = "hashing";
  InvariantVerdict good;
  good.kind = "balance";
  good.pass = true;
  InvariantVerdict bad;
  bad.kind = "churn";
  bad.pass = false;
  bad.detail = "too many moves";
  run.invariants = {good, bad};
  run.wall_ms = 12.5;
  run.peak_rss_mb = 48.25;

  EXPECT_FALSE(report.pass());
  const std::string json = report_json(report);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"pass\": false"), std::string::npos);
  EXPECT_NE(json.find("\"violations\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"invariant_kinds\": [\"balance\", \"churn\"]"),
            std::string::npos);
  EXPECT_NE(json.find("too many moves"), std::string::npos);
  // Every run cell carries its cost: wall time and the RSS high-water
  // mark, so a regression is attributable without rerunning.
  EXPECT_NE(json.find("\"wall_ms\": 12.500000"), std::string::npos);
  EXPECT_NE(json.find("\"peak_rss_mb\": 48.250000"), std::string::npos);
}

// --- runner golden-path mapping ----------------------------------------

TEST(Runner, GoldenPathFlattensSpecAndResolvesRelative) {
  Scenario s;
  s.name = "g";
  s.file = "scenarios/g.scn";
  s.drift_golden = "golden/g";
  EXPECT_EQ(golden_path(s, "tr-metis:cut_floor=0.25"),
            "scenarios/golden/g/tr-metis_cut_floor_0.25.jsonl");
  s.file = "";
  EXPECT_EQ(golden_path(s, "kl"), "./golden/g/kl.jsonl");
  s.drift_golden = "";
  EXPECT_THROW(golden_path(s, "kl"), util::CheckFailure);
}

}  // namespace
}  // namespace ethshard::scenario
