// Determinism and correctness tests for the parallel multilevel
// partitioner (mt-MLKP): the matching/contraction building blocks and the
// end-to-end guarantee that a fixed (graph, seed, k) yields a
// bit-identical partition for every thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "metrics/metrics.hpp"
#include "obs/obs.hpp"
#include "partition/coarsen.hpp"
#include "partition/kway_refine.hpp"
#include "partition/mlkp.hpp"
#include "partition/parallel_contract.hpp"
#include "partition/parallel_match.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace ethshard::partition {
namespace {

using graph::Graph;
using graph::Vertex;
using graph::Weight;

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};
constexpr std::uint64_t kSeeds[] = {1, 7, 42};
constexpr std::uint32_t kShardCounts[] = {2, 4, 8};

Graph ba_graph() {
  util::Rng rng(5);
  return graph::make_barabasi_albert(1500, 3, rng);
}

Graph grid_graph() { return graph::make_grid(30, 30); }

/// Symmetrized interaction graph of a tiny generated history — the same
/// graph shape the simulator hands to METIS/R-METIS, scaled down so the
/// full differential sweep stays fast.
Graph history_graph() {
  workload::GeneratorConfig cfg;
  cfg.scale = 0.0005;
  cfg.seed = 99;
  const workload::History history =
      workload::EthereumHistoryGenerator(cfg).generate();
  graph::GraphBuilder builder;
  for (const eth::Block& b : history.chain.blocks())
    for (const eth::Transaction& tx : b.transactions)
      for (const eth::Call& c : tx.calls) {
        builder.ensure_vertices(std::max(c.from, c.to) + 1, 1);
        builder.add_edge(c.from, c.to, 1);
      }
  return builder.build_undirected();
}

/// Equality on the parts of a Graph the partitioner can observe.
void expect_same_graph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (Vertex v = 0; v < a.num_vertices(); ++v) {
    EXPECT_EQ(a.vertex_weight(v), b.vertex_weight(v)) << "vertex " << v;
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "degree of " << v;
    for (std::size_t i = 0; i < na.size(); ++i)
      EXPECT_TRUE(na[i] == nb[i]) << "arc " << i << " of vertex " << v;
  }
}

bool has_neighbor(const Graph& g, Vertex u, Vertex v) {
  for (const graph::Arc& a : g.neighbors(u))
    if (a.to == v) return true;
  return false;
}

// ------------------------------------------------------------- matching

TEST(ParallelMatching, IsValidInvolutionOnEdges) {
  const Graph g = ba_graph();
  const std::vector<Vertex> match =
      parallel_matching(g, MatchingScheme::kHeavyEdge, 0xfeedULL, 4);
  ASSERT_EQ(match.size(), g.num_vertices());
  std::uint64_t pairs = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    ASSERT_LT(match[v], g.num_vertices());
    EXPECT_EQ(match[match[v]], v) << "match is not an involution at " << v;
    if (match[v] != v) {
      EXPECT_TRUE(has_neighbor(g, v, match[v]))
          << v << " matched to non-neighbor " << match[v];
      ++pairs;
    }
  }
  // A BA graph is connected, so the matching must pair most vertices.
  EXPECT_GT(pairs, g.num_vertices() / 2);
}

TEST(ParallelMatching, BitIdenticalAcrossThreadCounts) {
  for (const Graph& g : {ba_graph(), grid_graph()}) {
    for (const MatchingScheme scheme :
         {MatchingScheme::kHeavyEdge, MatchingScheme::kRandom}) {
      const std::vector<Vertex> reference =
          parallel_matching(g, scheme, 0xabcdULL, 1);
      for (const std::size_t threads : kThreadCounts)
        EXPECT_EQ(parallel_matching(g, scheme, 0xabcdULL, threads),
                  reference)
            << "threads=" << threads;
    }
  }
}

TEST(ParallelMatching, SaltChangesTieBreaks) {
  // On an unweighted grid every edge ties, so the salt alone decides the
  // matching; two salts agreeing everywhere would mean it is ignored.
  const Graph g = grid_graph();
  const auto a = parallel_matching(g, MatchingScheme::kHeavyEdge, 1, 2);
  const auto b = parallel_matching(g, MatchingScheme::kHeavyEdge, 2, 2);
  EXPECT_NE(a, b);
}

// ----------------------------------------------------------- contraction

TEST(ParallelContract, PreservesWeightTotalsAndDropsInternalEdges) {
  const Graph g = ba_graph();
  const std::vector<Vertex> match =
      parallel_matching(g, MatchingScheme::kHeavyEdge, 0xfeedULL, 4);
  const CoarseLevel level = parallel_contract(g, match, 4);

  ASSERT_EQ(level.fine_to_coarse.size(), g.num_vertices());
  // Matched pairs land on one coarse vertex; weights are constituent sums.
  std::uint64_t pairs = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(level.fine_to_coarse[v], level.fine_to_coarse[match[v]]);
    if (match[v] != v) ++pairs;
  }
  EXPECT_EQ(level.graph.num_vertices(), g.num_vertices() - pairs / 2);
  EXPECT_EQ(level.graph.total_vertex_weight(), g.total_vertex_weight());

  // Edge weight shrinks by exactly the weight of the intra-pair edges;
  // self-loops must not appear.
  Weight internal = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    for (const graph::Arc& a : g.neighbors(v))
      if (a.to == match[v] && v < a.to) internal += a.weight;
  EXPECT_EQ(level.graph.total_edge_weight(),
            g.total_edge_weight() - internal);
  for (Vertex c = 0; c < level.graph.num_vertices(); ++c)
    for (const graph::Arc& a : level.graph.neighbors(c))
      EXPECT_NE(a.to, c) << "self-loop on coarse vertex " << c;
  EXPECT_TRUE(level.graph.check_symmetric());
}

TEST(ParallelContract, BitIdenticalAcrossThreadCounts) {
  const Graph g = grid_graph();
  const std::vector<Vertex> match =
      parallel_matching(g, MatchingScheme::kHeavyEdge, 0x1234ULL, 1);
  const CoarseLevel reference = parallel_contract(g, match, 1);
  for (const std::size_t threads : kThreadCounts) {
    const CoarseLevel level = parallel_contract(g, match, threads);
    EXPECT_EQ(level.fine_to_coarse, reference.fine_to_coarse)
        << "threads=" << threads;
    expect_same_graph(level.graph, reference.graph);
  }
}

TEST(CoarsenMt, HierarchyIdenticalAcrossThreadCounts) {
  const Graph g = ba_graph();
  util::Rng ref_rng(7);
  const std::vector<CoarseLevel> reference =
      coarsen_mt(g, 120, MatchingScheme::kHeavyEdge, ref_rng, 1);
  const std::uint64_t ref_stream_next = ref_rng.next();
  ASSERT_FALSE(reference.empty());
  EXPECT_LE(reference.back().graph.num_vertices(), g.num_vertices());
  for (const std::size_t threads : kThreadCounts) {
    util::Rng rng(7);
    const std::vector<CoarseLevel> levels =
        coarsen_mt(g, 120, MatchingScheme::kHeavyEdge, rng, threads);
    ASSERT_EQ(levels.size(), reference.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < levels.size(); ++i) {
      EXPECT_EQ(levels[i].fine_to_coarse, reference[i].fine_to_coarse);
      expect_same_graph(levels[i].graph, reference[i].graph);
    }
    // The RNG stream advance must not depend on the thread count either,
    // or everything downstream of coarsening would diverge.
    EXPECT_EQ(rng.next(), ref_stream_next) << "threads=" << threads;
  }
}

// ------------------------------------------------------ k-way refinement

TEST(KwayRefineMt, NeverWorsensAndMatchesAcrossThreadCounts) {
  const Graph g = ba_graph();
  for (const std::uint32_t k : kShardCounts) {
    Partition start(g.num_vertices(), k);
    for (Vertex v = 0; v < g.num_vertices(); ++v)
      start.assign(v, static_cast<ShardId>(v % k));
    const Weight cut_before = edge_cut_weight(g, start);

    KwayRefineConfig cfg;
    Partition reference = start;
    const Weight cut_after = kway_refine_mt(g, reference, cfg, 1);
    EXPECT_LE(cut_after, cut_before) << "k=" << k;
    EXPECT_EQ(cut_after, edge_cut_weight(g, reference));

    for (const std::size_t threads : kThreadCounts) {
      Partition p = start;
      EXPECT_EQ(kway_refine_mt(g, p, cfg, threads), cut_after)
          << "k=" << k << " threads=" << threads;
      EXPECT_EQ(p.assignments(), reference.assignments())
          << "k=" << k << " threads=" << threads;
    }
  }
}

// --------------------------------------------------- end-to-end mt-MLKP

/// The tentpole guarantee: for every (graph, seed, k), every thread count
/// — including 0 = hardware concurrency — produces the exact partition
/// the serial run produces.
void expect_thread_invariant(const Graph& g, const char* label) {
  for (const std::uint64_t seed : kSeeds) {
    for (const std::uint32_t k : kShardCounts) {
      MlkpConfig cfg;
      cfg.seed = seed;
      cfg.threads = 1;
      const Partition reference = MlkpPartitioner(cfg).partition(g, k);
      ASSERT_TRUE(reference.is_complete());
      EXPECT_EQ(reference.k(), k);

      for (const std::size_t threads : {std::size_t{2}, std::size_t{4},
                                        std::size_t{8}, std::size_t{0}}) {
        cfg.threads = threads;
        const Partition p = MlkpPartitioner(cfg).partition(g, k);
        EXPECT_EQ(p.assignments(), reference.assignments())
            << label << " seed=" << seed << " k=" << k
            << " threads=" << threads;
      }
    }
  }
}

TEST(MlkpThreadInvariance, BarabasiAlbert) {
  expect_thread_invariant(ba_graph(), "ba");
}

TEST(MlkpThreadInvariance, Grid) {
  expect_thread_invariant(grid_graph(), "grid");
}

TEST(MlkpThreadInvariance, GeneratedHistory) {
  expect_thread_invariant(history_graph(), "history");
}

TEST(MlkpThreadInvariance, HoldsWithObservabilityEnabled) {
  // The parallel runtime and matcher are instrumented (pool wait/run
  // histograms, CAS-retry counters, per-level spans). Recording must stay
  // on the side: with metrics AND tracing live, every thread count still
  // reproduces the serial partition bit for bit.
  obs::set_enabled(true);
  obs::set_trace_enabled(true);
  const Graph g = ba_graph();
  obs::Registry reg;
  {
    const obs::ScopedRegistry scope(reg);
    MlkpConfig cfg;
    cfg.seed = 7;
    cfg.threads = 1;
    const Partition reference = MlkpPartitioner(cfg).partition(g, 4);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4},
                                      std::size_t{8}, std::size_t{0}}) {
      cfg.threads = threads;
      const Partition p = MlkpPartitioner(cfg).partition(g, 4);
      EXPECT_EQ(p.assignments(), reference.assignments())
          << "obs-enabled, threads=" << threads;
    }
  }
  obs::set_enabled(false);
  obs::set_trace_enabled(false);
  obs::TraceBuffer::global().clear();

#if ETHSHARD_OBS_ENABLED
  // The instrumentation actually fired: the matcher counts invocations
  // and the runtime histograms task wait/run times. Values that depend on
  // scheduling (retries, conflicts, wait times) are deliberately NOT
  // pinned — only presence is asserted.
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_GE(snap.counters.at("pmatch/invocations"), 1u);
  EXPECT_GE(snap.counters.at("pool/dispatches"), 1u);
  EXPECT_FALSE(snap.histograms.empty());
#endif
}

TEST(MlkpThreadInvariance, QualityUnchangedByThreads) {
  // Bit-identity already implies this; assert it directly anyway so a
  // future weakening of the identity check cannot silently cost quality.
  const Graph g = ba_graph();
  MlkpConfig cfg;
  cfg.seed = 7;
  cfg.threads = 1;
  const Partition serial = MlkpPartitioner(cfg).partition(g, 4);
  cfg.threads = 8;
  const Partition parallel = MlkpPartitioner(cfg).partition(g, 4);
  EXPECT_DOUBLE_EQ(metrics::static_edge_cut(g, serial),
                   metrics::static_edge_cut(g, parallel));
  EXPECT_DOUBLE_EQ(metrics::static_balance(serial),
                   metrics::static_balance(parallel));
}

}  // namespace
}  // namespace ethshard::partition
