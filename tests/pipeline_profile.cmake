# End-to-end smoke of the pipeline profiler, run by ctest (tier2):
#
#   1. `ethshard simulate --replay-threads 2 --trace-out` must write a
#      Chrome trace whose thread_name metadata names both pipeline lanes
#      (that is what makes the Perfetto timeline readable),
#   2. `trace_report` must ingest that trace and emit a schema-versioned
#      report whose stage counts prove the pipeline actually ran.
#
# On a multi-core host this is also a perf gate: a verdict of "serial"
# for the pipelined smoke means the pipelined replay lost to the serial
# estimate again — the regression this tooling exists to catch — so the
# check fails. Single-core hosts can't win the overlap by construction
# and only assert schema/plumbing there. Usage:
#   cmake -DCLI=<ethshard> -DTRACE_REPORT=<trace_report> -DWORKDIR=<scratch>
#         -P pipeline_profile.cmake

if(NOT DEFINED CLI OR NOT DEFINED TRACE_REPORT OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR
    "pipeline_profile.cmake needs -DCLI=..., -DTRACE_REPORT=... and "
    "-DWORKDIR=...")
endif()
if(CMAKE_VERSION VERSION_LESS 3.19)
  message(FATAL_ERROR
    "pipeline_profile.cmake needs cmake >= 3.19 (string(JSON))")
endif()
file(MAKE_DIRECTORY "${WORKDIR}")

set(trace "${WORKDIR}/pipeline.trace.json")
set(report "${WORKDIR}/pipeline.report.json")
file(REMOVE "${trace}" "${report}")

# Small enough to finish in seconds, large enough that both stages record
# a healthy number of windows.
execute_process(
  COMMAND ${CLI} simulate --preset paper --scale 0.02 --seed 5
          --method Hashing --shards 4 --replay-threads 2
          --trace-out ${trace}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "traced simulate failed (rc=${rc}):\n${out}\n${err}")
endif()
if(NOT EXISTS "${trace}")
  message(FATAL_ERROR "simulate wrote no trace file:\n${out}\n${err}")
endif()

# Both pipeline lanes must be named in the trace metadata.
file(READ "${trace}" trace_text)
foreach(lane "Stage A (aggregate)" "Stage B (apply+flush)")
  string(FIND "${trace_text}" "${lane}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "trace is missing the '${lane}' lane metadata")
  endif()
endforeach()

execute_process(
  COMMAND ${TRACE_REPORT} --trace ${trace} --out ${report}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "trace_report failed (rc=${rc}):\n${out}\n${err}")
endif()
if(NOT EXISTS "${report}")
  message(FATAL_ERROR "trace_report wrote no report:\n${out}\n${err}")
endif()

file(READ "${report}" report_text)
string(JSON schema ERROR_VARIABLE jerr GET "${report_text}" schema_version)
if(NOT jerr STREQUAL "NOTFOUND" OR NOT schema EQUAL 1)
  message(FATAL_ERROR
    "unexpected report schema (version '${schema}', error '${jerr}')")
endif()
string(JSON kind GET "${report_text}" kind)
if(NOT kind STREQUAL "pipeline_report")
  message(FATAL_ERROR "expected kind 'pipeline_report', got '${kind}'")
endif()

# The overlap/verdict machinery must have engaged on real pipeline spans.
string(JSON overlap ERROR_VARIABLE jerr
  GET "${report_text}" overlap overlap_fraction)
if(NOT jerr STREQUAL "NOTFOUND")
  message(FATAL_ERROR "report has no overlap.overlap_fraction: ${jerr}")
endif()
string(JSON applied GET "${report_text}" stages windows_applied)
string(JSON aggregated GET "${report_text}" stages windows_aggregated)
if(applied EQUAL 0 OR aggregated EQUAL 0)
  message(FATAL_ERROR
    "report saw no pipeline windows (aggregated=${aggregated}, "
    "applied=${applied}) — the simulator instrumentation is dark")
endif()
string(JSON verdict GET "${report_text}" verdict recommendation)
if(verdict STREQUAL "no-pipeline")
  message(FATAL_ERROR
    "trace of a --replay-threads 2 run analyzed as no-pipeline")
endif()
# The smoke replays dozens of windows; a degenerate-trace verdict here
# means the instrumentation (not the workload) broke.
if(verdict STREQUAL "insufficient_data")
  message(FATAL_ERROR
    "pipelined smoke with ${applied} applied windows analyzed as "
    "insufficient_data")
endif()
# Perf gate (multi-core runners only): the pipelined smoke must not
# analyze as serial-preferred — that is the exact regression signature
# the trace tooling was built to catch.
include(ProcessorCount)
ProcessorCount(ncores)
if(ncores GREATER 1 AND verdict STREQUAL "serial")
  string(JSON speedup GET "${report_text}" verdict speedup)
  message(FATAL_ERROR
    "pipelined smoke analyzed as serial-preferred on a ${ncores}-core "
    "host (speedup ${speedup}) — the pipelined replay is losing to its "
    "own serial estimate again")
endif()

message(STATUS
  "pipeline profile smoke passed: ${aggregated} windows aggregated, "
  "${applied} applied, overlap_fraction ${overlap}, verdict ${verdict}")
