# Smoke test of the perf harness, run by ctest at a tiny scale:
# perf_snapshot run -> schema-checked snapshot -> non-strict comparison
# against the committed baseline (presence + schema only; timings from a
# scaled-down run are advisory by construction).
# Usage: cmake -DPERF=<perf_snapshot> -DBASELINE=<baseline.json>
#              -DWORKDIR=<scratch> -P perf_smoke.cmake

if(NOT DEFINED PERF OR NOT DEFINED BASELINE OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR
    "perf_smoke.cmake needs -DPERF=... -DBASELINE=... -DWORKDIR=...")
endif()

file(MAKE_DIRECTORY "${WORKDIR}")
set(SNAPSHOT "${WORKDIR}/BENCH_smoke.json")

execute_process(
  COMMAND ${PERF} run --out ${SNAPSHOT} --reps 2
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "perf_snapshot run failed (rc=${rc}):\n${out}\n${err}")
endif()
if(NOT EXISTS ${SNAPSHOT})
  message(FATAL_ERROR "perf_snapshot run did not produce ${SNAPSHOT}")
endif()

execute_process(
  COMMAND ${PERF} check --snapshot ${SNAPSHOT} --baseline ${BASELINE}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "perf_snapshot check failed (rc=${rc}):\n${out}\n${err}")
endif()
if(NOT out MATCHES "smoke check passed")
  message(FATAL_ERROR "unexpected check output:\n${out}")
endif()

message(STATUS "perf smoke test passed")
