// Tests for the consensus-adjacent substrate: the mempool (fee-priority
// block packing under a gas limit, §II-A) and the block tree with
// longest-chain fork choice and reorg computation.
#include <gtest/gtest.h>

#include "eth/bloom.hpp"
#include "eth/chain.hpp"
#include "eth/difficulty.hpp"
#include "eth/fork_choice.hpp"
#include "eth/mempool.hpp"
#include "eth/pow.hpp"
#include "util/check.hpp"

namespace ethshard::eth {
namespace {

Transaction make_tx(AccountId sender, std::uint64_t nonce,
                    std::uint64_t gas_price, AccountId to = 999) {
  Transaction tx;
  tx.sender = sender;
  tx.nonce = nonce;
  tx.gas_price = gas_price;
  tx.calls.push_back(Call{sender, to, CallKind::kTransfer, 1});
  return tx;
}

// --------------------------------------------------------------- mempool

TEST(Mempool, SubmitAndSize) {
  Mempool pool;
  EXPECT_TRUE(pool.empty());
  EXPECT_TRUE(pool.submit(make_tx(1, 0, 5), 100));
  EXPECT_TRUE(pool.submit(make_tx(2, 0, 7), 100));
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_TRUE(pool.contains(1, 0));
  EXPECT_FALSE(pool.contains(1, 1));
}

TEST(Mempool, RejectsMalformed) {
  Mempool pool;
  Transaction bad;
  bad.sender = 1;  // empty trace
  EXPECT_FALSE(pool.submit(std::move(bad), 100));
  EXPECT_TRUE(pool.empty());
}

TEST(Mempool, ReplacementRequiresBetterPrice) {
  Mempool pool;
  EXPECT_TRUE(pool.submit(make_tx(1, 0, 5), 100));
  EXPECT_FALSE(pool.submit(make_tx(1, 0, 5), 200));  // equal price
  EXPECT_FALSE(pool.submit(make_tx(1, 0, 4), 200));  // worse
  EXPECT_TRUE(pool.submit(make_tx(1, 0, 9), 200));   // better replaces
  EXPECT_EQ(pool.size(), 1u);
  const auto block = pool.pack_block(1'000'000);
  ASSERT_EQ(block.size(), 1u);
  EXPECT_EQ(block[0].gas_price, 9u);
}

TEST(Mempool, PacksByGasPrice) {
  Mempool pool;
  pool.submit(make_tx(1, 0, 3), 100);
  pool.submit(make_tx(2, 0, 9), 100);
  pool.submit(make_tx(3, 0, 6), 100);
  const auto block = pool.pack_block(10'000'000);
  ASSERT_EQ(block.size(), 3u);
  EXPECT_EQ(block[0].gas_price, 9u);
  EXPECT_EQ(block[1].gas_price, 6u);
  EXPECT_EQ(block[2].gas_price, 3u);
  EXPECT_TRUE(pool.empty());
}

TEST(Mempool, NonceChainsNeverReorder) {
  Mempool pool;
  // Sender 1's nonce-1 tx pays more than its nonce-0 tx, but must still
  // come after it.
  pool.submit(make_tx(1, 0, 2), 100);
  pool.submit(make_tx(1, 1, 50), 100);
  pool.submit(make_tx(2, 0, 10), 100);
  const auto block = pool.pack_block(10'000'000);
  ASSERT_EQ(block.size(), 3u);
  EXPECT_EQ(block[0].sender, 2u);  // best eligible price
  EXPECT_EQ(block[1].sender, 1u);
  EXPECT_EQ(block[1].nonce, 0u);
  EXPECT_EQ(block[2].nonce, 1u);
}

TEST(Mempool, RespectsGasLimit) {
  Mempool pool;
  for (AccountId s = 1; s <= 10; ++s) pool.submit(make_tx(s, 0, s), 100);
  const std::uint64_t one_tx_gas = transaction_gas(make_tx(1, 0, 1));
  const auto block = pool.pack_block(3 * one_tx_gas);
  EXPECT_EQ(block.size(), 3u);
  EXPECT_EQ(pool.size(), 7u);
  // Highest payers got in.
  EXPECT_EQ(block[0].gas_price, 10u);
  EXPECT_EQ(block[1].gas_price, 9u);
  EXPECT_EQ(block[2].gas_price, 8u);
}

TEST(Mempool, ZeroLimitPacksNothing) {
  Mempool pool;
  pool.submit(make_tx(1, 0, 5), 100);
  EXPECT_TRUE(pool.pack_block(0).empty());
  EXPECT_EQ(pool.size(), 1u);
}

TEST(Mempool, EvictionByAge) {
  Mempool pool;
  pool.submit(make_tx(1, 0, 5), 100);
  pool.submit(make_tx(2, 0, 5), 200);
  pool.submit(make_tx(3, 0, 5), 300);
  EXPECT_EQ(pool.evict_older_than(250), 2u);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(pool.contains(3, 0));
}

// ------------------------------------------------------------ fork choice

Block child_of(const Block& parent, util::Timestamp ts,
               std::uint64_t marker) {
  Block b;
  b.number = parent.number + 1;
  b.timestamp = ts;
  b.parent_hash = parent.hash();
  // Distinguish sibling blocks via a marker transaction.
  Transaction tx;
  tx.sender = marker;
  tx.calls.push_back(Call{marker, marker + 1, CallKind::kTransfer, 0});
  b.transactions.push_back(std::move(tx));
  return b;
}

Block make_genesis() {
  Block g;
  g.number = 0;
  g.timestamp = 1000;
  return g;
}

TEST(BlockTree, LinearGrowth) {
  const Block genesis = make_genesis();
  BlockTree tree(genesis);
  Block b1 = child_of(genesis, 1100, 1);
  Block b2 = child_of(b1, 1200, 2);
  EXPECT_TRUE(tree.insert(b1));
  EXPECT_TRUE(tree.insert(b2));
  EXPECT_EQ(tree.head(), b2.hash());
  EXPECT_EQ(tree.head_height(), 2u);
  EXPECT_EQ(tree.canonical_chain().size(), 3u);
}

TEST(BlockTree, RejectsUnknownParentAndDuplicates) {
  const Block genesis = make_genesis();
  BlockTree tree(genesis);
  Block orphan = child_of(genesis, 1100, 1);
  orphan.parent_hash = keccak256("nowhere");
  EXPECT_FALSE(tree.insert(orphan));

  Block b1 = child_of(genesis, 1100, 1);
  EXPECT_TRUE(tree.insert(b1));
  EXPECT_FALSE(tree.insert(b1));  // duplicate hash
  EXPECT_EQ(tree.size(), 2u);
}

TEST(BlockTree, RejectsBadNumberOrTimestamp) {
  const Block genesis = make_genesis();
  BlockTree tree(genesis);
  Block wrong_number = child_of(genesis, 1100, 1);
  wrong_number.number = 5;
  EXPECT_FALSE(tree.insert(wrong_number));

  Block early = child_of(genesis, 999, 2);  // before parent
  EXPECT_FALSE(tree.insert(early));
}

TEST(BlockTree, ShorterForkDoesNotSwitchHead) {
  const Block genesis = make_genesis();
  BlockTree tree(genesis);
  Block a1 = child_of(genesis, 1100, 1);
  Block a2 = child_of(a1, 1200, 2);
  Block b1 = child_of(genesis, 1150, 3);  // competing branch, shorter
  tree.insert(a1);
  tree.insert(a2);
  EXPECT_TRUE(tree.insert(b1));
  EXPECT_EQ(tree.head(), a2.hash());
  EXPECT_TRUE(tree.is_canonical(a1.hash()));
  EXPECT_FALSE(tree.is_canonical(b1.hash()));
}

TEST(BlockTree, LongerForkReorganizes) {
  const Block genesis = make_genesis();
  BlockTree tree(genesis);
  Block a1 = child_of(genesis, 1100, 1);
  Block b1 = child_of(genesis, 1150, 3);
  Block b2 = child_of(b1, 1250, 4);
  tree.insert(a1);
  EXPECT_EQ(tree.head(), a1.hash());
  tree.insert(b1);
  EXPECT_EQ(tree.head(), a1.hash());  // tie at height 1 keeps... or flips
  tree.insert(b2);
  EXPECT_EQ(tree.head(), b2.hash());

  const BlockTree::Reorg& reorg = tree.last_reorg();
  // Whatever the height-1 tie did, the final reorg lands on branch b.
  EXPECT_EQ(reorg.applied.back(), b2.hash());
  for (const Hash256& rolled : reorg.rolled_back)
    EXPECT_FALSE(tree.is_canonical(rolled));
}

TEST(BlockTree, ReorgBetweenComputesSymmetricDiff) {
  const Block genesis = make_genesis();
  BlockTree tree(genesis);
  Block a1 = child_of(genesis, 1100, 1);
  Block a2 = child_of(a1, 1200, 2);
  Block b1 = child_of(genesis, 1150, 3);
  Block b2 = child_of(b1, 1250, 4);
  tree.insert(a1);
  tree.insert(a2);
  tree.insert(b1);
  tree.insert(b2);

  const BlockTree::Reorg reorg =
      tree.reorg_between(a2.hash(), b2.hash());
  ASSERT_EQ(reorg.rolled_back.size(), 2u);
  ASSERT_EQ(reorg.applied.size(), 2u);
  EXPECT_EQ(reorg.rolled_back[0], a2.hash());  // tip first
  EXPECT_EQ(reorg.rolled_back[1], a1.hash());
  EXPECT_EQ(reorg.applied[0], b1.hash());  // ancestor first
  EXPECT_EQ(reorg.applied[1], b2.hash());
}

TEST(BlockTree, ReorgToSelfIsEmpty) {
  const Block genesis = make_genesis();
  BlockTree tree(genesis);
  Block a1 = child_of(genesis, 1100, 1);
  tree.insert(a1);
  const auto reorg = tree.reorg_between(a1.hash(), a1.hash());
  EXPECT_TRUE(reorg.rolled_back.empty());
  EXPECT_TRUE(reorg.applied.empty());
}

TEST(BlockTree, EqualHeightTieBreaksDeterministically) {
  const Block genesis = make_genesis();
  Block a1 = child_of(genesis, 1100, 1);
  Block b1 = child_of(genesis, 1150, 3);

  // Insert in both orders: the same head must win.
  BlockTree t1(genesis);
  t1.insert(a1);
  t1.insert(b1);
  BlockTree t2(genesis);
  t2.insert(b1);
  t2.insert(a1);
  EXPECT_EQ(t1.head(), t2.head());
  EXPECT_EQ(t1.head(), std::min(a1.hash(), b1.hash()));
}

TEST(BlockTree, UnknownHashThrows) {
  BlockTree tree(make_genesis());
  EXPECT_THROW(tree.height_of(keccak256("nope")), util::CheckFailure);
}

// ------------------------------------------------------------- difficulty

TEST(Difficulty, FastBlocksRaiseDifficulty) {
  const DifficultyParams p{.ice_age = false};
  const std::uint64_t d0 = 1'000'000;
  // Block mined in 5s (< 10s target) → difficulty rises by d/2048.
  EXPECT_EQ(next_difficulty(d0, 5, 100, p), d0 + d0 / 2048);
}

TEST(Difficulty, SlowBlocksLowerDifficulty) {
  const DifficultyParams p{.ice_age = false};
  const std::uint64_t d0 = 1'000'000;
  // 35s delta → sigma = 1 - 3 = -2.
  EXPECT_EQ(next_difficulty(d0, 35, 100, p),
            d0 - 2 * (d0 / 2048));
}

TEST(Difficulty, SigmaIsClampedAtMinus99) {
  const DifficultyParams p{.ice_age = false};
  const std::uint64_t d0 = 10'000'000;
  EXPECT_EQ(next_difficulty(d0, 1'000'000, 100, p),
            d0 - 99 * (d0 / 2048));
}

TEST(Difficulty, NeverFallsBelowMinimum) {
  const DifficultyParams p{.ice_age = false};
  EXPECT_EQ(next_difficulty(p.minimum_difficulty, 10'000, 100, p),
            p.minimum_difficulty);
}

TEST(Difficulty, IceAgeTermGrowsExponentially) {
  const std::uint64_t d0 = 10'000'000'000ULL;
  const std::uint64_t base =
      next_difficulty(d0, 10, 50'000, DifficultyParams{.ice_age = false});
  // At block 3.0M the bomb term is 2^28; at 4.0M it is 2^38.
  EXPECT_EQ(next_difficulty(d0, 10, 3'000'000, DifficultyParams{}),
            base + (1ULL << 28));
  EXPECT_EQ(next_difficulty(d0, 10, 4'000'000, DifficultyParams{}),
            base + (1ULL << 38));
}

TEST(Difficulty, ConvergesTowardTargetSpacing) {
  // Closed loop: expected block time = difficulty / hashrate. Starting
  // far off, repeated adjustment pulls spacing toward ~10-20s.
  const DifficultyParams p{.ice_age = false};
  const double hashrate = 1e6;  // hashes/s
  std::uint64_t d = 100'000'000;  // way too hard: ~100s blocks
  double spacing = 0;
  for (int i = 0; i < 3000; ++i) {
    spacing = static_cast<double>(d) / hashrate;
    d = next_difficulty(
        d, static_cast<std::uint64_t>(std::max(1.0, spacing)), 100, p);
  }
  EXPECT_GT(spacing, 5.0);
  EXPECT_LT(spacing, 25.0);
}

// ----------------------------------------------------------------- bloom

TEST(Bloom, MembersAlwaysMatch) {
  Bloom2048 bloom;
  for (int i = 0; i < 50; ++i)
    bloom.add(Address::from_id(static_cast<AccountId>(i)));
  for (int i = 0; i < 50; ++i)
    EXPECT_TRUE(
        bloom.might_contain(Address::from_id(static_cast<AccountId>(i))));
}

TEST(Bloom, EmptyMatchesNothing) {
  const Bloom2048 bloom;
  EXPECT_TRUE(bloom.empty());
  EXPECT_FALSE(bloom.might_contain(Address::from_id(7)));
  EXPECT_FALSE(bloom.might_contain("anything"));
}

TEST(Bloom, FalsePositiveRateIsLowWhenSparse) {
  Bloom2048 bloom;
  for (AccountId id = 0; id < 40; ++id)  // 40 items, ≤120 of 2048 bits
    bloom.add(Address::from_id(id));
  int false_positives = 0;
  constexpr int kProbes = 2000;
  for (int i = 0; i < kProbes; ++i)
    if (bloom.might_contain(
            Address::from_id(static_cast<AccountId>(100000 + i))))
      ++false_positives;
  // Theoretical fp ≈ (120/2048)^3 ≈ 2e-4; allow generous slack.
  EXPECT_LT(false_positives, kProbes / 100);
}

TEST(Bloom, ThreeBitsPerItem) {
  Bloom2048 bloom;
  bloom.add("item");
  EXPECT_LE(bloom.popcount(), 3u);
  EXPECT_GE(bloom.popcount(), 1u);
}

TEST(Bloom, MergeIsUnion) {
  Bloom2048 a;
  Bloom2048 b;
  a.add(Address::from_id(1));
  b.add(Address::from_id(2));
  a.merge(b);
  EXPECT_TRUE(a.might_contain(Address::from_id(1)));
  EXPECT_TRUE(a.might_contain(Address::from_id(2)));
}

TEST(Bloom, BlockBloomCoversAllParticipants) {
  Block b;
  b.number = 0;
  b.timestamp = 10;
  Transaction tx;
  tx.sender = 5;
  tx.calls.push_back(Call{5, 9, CallKind::kContractCall, 0});
  tx.calls.push_back(Call{9, 12, CallKind::kTransfer, 3});
  b.transactions.push_back(tx);
  const Bloom2048 bloom = block_address_bloom(b);
  for (AccountId id : {5ULL, 9ULL, 12ULL})
    EXPECT_TRUE(bloom.might_contain(Address::from_id(id)));
  EXPECT_FALSE(bloom.might_contain(Address::from_id(424242)));
}

// ------------------------------------------------------------------- pow

TEST(Pow, TargetHalvesPerBit) {
  EXPECT_EQ(pow_target(0), ~std::uint64_t{0});
  EXPECT_EQ(pow_target(1), ~std::uint64_t{0} >> 1);
  EXPECT_EQ(pow_target(8), ~std::uint64_t{0} >> 8);
  EXPECT_THROW(pow_target(64), util::CheckFailure);
}

TEST(Pow, MineFindsValidSeal) {
  Block b = make_genesis();
  const auto seal = mine(b, /*difficulty_bits=*/10);
  ASSERT_TRUE(seal.has_value());
  EXPECT_TRUE(check_seal(b, *seal, 10));
  // The digest really is below target.
  EXPECT_LE(hash_prefix_u64(seal->mix), pow_target(10));
}

TEST(Pow, SealIsDeterministic) {
  Block b = make_genesis();
  const auto a = mine(b, 8);
  const auto c = mine(b, 8);
  ASSERT_TRUE(a && c);
  EXPECT_EQ(a->nonce, c->nonce);
  EXPECT_EQ(a->mix, c->mix);
}

TEST(Pow, SealInvalidForDifferentBlock) {
  Block b1 = make_genesis();
  Block b2 = child_of(b1, 2000, 1);
  const auto seal = mine(b1, 8);
  ASSERT_TRUE(seal);
  EXPECT_FALSE(check_seal(b2, *seal, 8));
}

TEST(Pow, TamperedMixRejected) {
  Block b = make_genesis();
  auto seal = mine(b, 8);
  ASSERT_TRUE(seal);
  seal->mix[0] ^= 0x01;
  EXPECT_FALSE(check_seal(b, *seal, 8));
}

TEST(Pow, HigherDifficultyNeedsMoreWorkOnAverage) {
  // Statistical: over several blocks, nonces found at 12 bits exceed
  // those at 4 bits in total.
  std::uint64_t easy_total = 0;
  std::uint64_t hard_total = 0;
  Block parent = make_genesis();
  for (int i = 0; i < 8; ++i) {
    Block b = child_of(parent, 1000 + 100 * (i + 1),
                       static_cast<std::uint64_t>(100 + i));
    const auto easy = mine(b, 4);
    const auto hard = mine(b, 12);
    ASSERT_TRUE(easy && hard);
    easy_total += easy->nonce;
    hard_total += hard->nonce;
    parent = b;
  }
  EXPECT_GT(hard_total, easy_total);
}

TEST(Pow, BudgetExhaustionReturnsNothing) {
  Block b = make_genesis();
  // 2^40-expected-work puzzle with a 4-attempt budget: all but certain
  // to miss.
  EXPECT_FALSE(mine(b, 40, /*max_attempts=*/4).has_value());
}

TEST(Pow, SealedChainEndToEnd) {
  // Mine a 3-block chain at trivial difficulty; every seal verifies and
  // the chain still validates structurally.
  constexpr unsigned kBits = 6;
  Chain chain;
  std::vector<Seal> seals;
  Block genesis = make_genesis();
  const Seal gseal = *mine(genesis, kBits);
  chain.append(std::move(genesis));
  seals.push_back(gseal);
  for (int i = 1; i <= 2; ++i) {
    Block b = child_of(chain.last(), 1000 + 100 * i,
                       static_cast<std::uint64_t>(i));
    b.parent_hash = chain.block_hash(static_cast<std::uint64_t>(i - 1));
    const auto seal = mine(b, kBits);
    ASSERT_TRUE(seal);
    seals.push_back(*seal);
    chain.append(std::move(b));
  }
  EXPECT_TRUE(chain.validate());
  for (std::uint64_t i = 0; i < chain.size(); ++i)
    EXPECT_TRUE(check_seal(chain.block(i), seals[i], kBits));
}

}  // namespace
}  // namespace ethshard::eth
