# End-to-end smoke test of the ethshard CLI, run by ctest:
#   generate -> stats -> simulate (+ csv) -> partition -> dot -> import.
# Usage: cmake -DCLI=<path-to-ethshard> -DWORKDIR=<scratch> -P cli_smoke.cmake

if(NOT DEFINED CLI OR NOT DEFINED WORKDIR)
  message(FATAL_ERROR "cli_smoke.cmake needs -DCLI=... and -DWORKDIR=...")
endif()

file(MAKE_DIRECTORY "${WORKDIR}")
set(TRACE "${WORKDIR}/trace.csv")
set(WINDOWS "${WORKDIR}/windows.csv")
set(IMPORTED "${WORKDIR}/imported.csv")

function(run_cli expect_substring)
  execute_process(
    COMMAND ${CLI} ${ARGN}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ethshard ${ARGN} failed (rc=${rc}):\n${out}\n${err}")
  endif()
  if(NOT expect_substring STREQUAL "" AND NOT out MATCHES "${expect_substring}")
    message(FATAL_ERROR
      "ethshard ${ARGN}: expected output matching '${expect_substring}', got:\n${out}")
  endif()
endfunction()

run_cli("wrote" generate --scale 0.0003 --seed 5 --out ${TRACE})
run_cli("transactions" stats --trace ${TRACE})
set(TELEMETRY "${WORKDIR}/windows.jsonl")
set(METRICS_CSV "${WORKDIR}/metrics.csv")
run_cli("moves" simulate --trace ${TRACE} --method Hashing --shards 2
        --csv ${WINDOWS} --telemetry-out ${TELEMETRY}
        --metrics-out ${METRICS_CSV})

# Streaming telemetry: one JSONL record per window, schema v1.
if(NOT EXISTS ${TELEMETRY})
  message(FATAL_ERROR "simulate --telemetry-out did not produce ${TELEMETRY}")
endif()
file(STRINGS ${TELEMETRY} telemetry_lines)
list(LENGTH telemetry_lines telemetry_count)
if(telemetry_count LESS 1)
  message(FATAL_ERROR "telemetry file ${TELEMETRY} is empty")
endif()
foreach(line IN LISTS telemetry_lines)
  if(NOT line MATCHES "^\\{\"v\": 1, \"seq\": [0-9]+, \"window_start\": ")
    message(FATAL_ERROR "bad telemetry record: ${line}")
  endif()
endforeach()

# --metrics-out with a .csv extension selects the CSV exporter.
if(NOT EXISTS ${METRICS_CSV})
  message(FATAL_ERROR "--metrics-out did not produce ${METRICS_CSV}")
endif()
file(STRINGS ${METRICS_CSV} metrics_lines LIMIT_COUNT 1)
if(NOT metrics_lines STREQUAL "kind,name,count,value,min,max,p50,p90,p99")
  message(FATAL_ERROR
    "--metrics-out *.csv wrote a non-CSV header: ${metrics_lines}")
endif()
run_cli("commVolume" partition --trace ${TRACE} --shards 4 --method MLKP)
run_cli("digraph" dot --trace ${TRACE} --from 2016-06-01 --to 2016-08-01
        --max-nodes 10)

if(NOT EXISTS ${WINDOWS})
  message(FATAL_ERROR "simulate --csv did not produce ${WINDOWS}")
endif()

# Hand-craft a tiny BigQuery-style traces export and import it.
set(BQ "${WORKDIR}/bq_traces.csv")
file(WRITE ${BQ}
"block_number,block_timestamp,transaction_hash,from_address,to_address,value,trace_type,input
100,1500000000,0xaa,0x0000000000000000000000000000000000000001,0x0000000000000000000000000000000000000002,5,call,0xdead
100,1500000000,0xbb,0x0000000000000000000000000000000000000003,0x0000000000000000000000000000000000000004,9,call,0x
101,1500000015,0xcc,0x0000000000000000000000000000000000000001,0x0000000000000000000000000000000000000005,0,create,0x6080
")
run_cli("imported 3 calls" import --traces ${BQ} --out ${IMPORTED})
run_cli("transactions" stats --trace ${IMPORTED})

# METIS interop: export the graph, fabricate a .part file with our own
# partitioner via the partition command being deterministic is overkill —
# instead produce an all-zeros part file and evaluate it.
set(METIS_GRAPH "${WORKDIR}/graph.metis")
run_cli("vertices" metis-export --trace ${TRACE} --out ${METIS_GRAPH})
# Build a trivial 1-shard-on-0 partition file matching the vertex count.
file(STRINGS ${METIS_GRAPH} metis_lines)
list(GET metis_lines 1 header)   # line 0 is the comment
string(REGEX MATCH "^[0-9]+" metis_n "${header}")
set(part_content "")
math(EXPR last "${metis_n} - 1")
foreach(i RANGE ${last})
  string(APPEND part_content "0\n")
endforeach()
set(METIS_PART "${WORKDIR}/graph.part")
file(WRITE ${METIS_PART} "${part_content}")
run_cli("communication volume: 0" metis-eval --trace ${TRACE}
        --part ${METIS_PART} --shards 2)

# Unknown method must fail cleanly.
execute_process(
  COMMAND ${CLI} simulate --trace ${TRACE} --method Bogus
  RESULT_VARIABLE rc
  OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "simulate with a bogus method should fail")
endif()

message(STATUS "cli smoke test passed")
