// Unit and property tests for the graph module: builder accumulation,
// CSR invariants, symmetrization, induced subgraphs, generators, DOT.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "graph/dot.hpp"
#include "graph/serialize.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ethshard::graph {
namespace {

// --------------------------------------------------------------- builder

TEST(GraphBuilder, AccumulatesParallelEdges) {
  GraphBuilder b;
  b.ensure_vertices(3);
  b.add_edge(0, 1, 1);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 2, 1);
  EXPECT_EQ(b.num_edges(), 2u);
  EXPECT_EQ(b.edge_weight(0, 1), 3u);
  EXPECT_EQ(b.edge_weight(1, 2), 1u);
  EXPECT_EQ(b.edge_weight(2, 1), 0u);
  EXPECT_EQ(b.total_edge_weight(), 4u);
}

TEST(GraphBuilder, DirectedSnapshot) {
  GraphBuilder b;
  b.ensure_vertices(3);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 0, 3);
  const Graph g = b.build_directed();
  EXPECT_TRUE(g.directed());
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.total_edge_weight(), 5u);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0].to, 1u);
  EXPECT_EQ(g.neighbors(0)[0].weight, 2u);
}

TEST(GraphBuilder, UndirectedMergesBothDirections) {
  GraphBuilder b;
  b.ensure_vertices(2);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 0, 3);
  const Graph g = b.build_undirected();
  EXPECT_FALSE(g.directed());
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.total_edge_weight(), 5u);
  EXPECT_TRUE(g.check_symmetric());
}

TEST(GraphBuilder, UndirectedDropsSelfLoops) {
  GraphBuilder b;
  b.ensure_vertices(2);
  b.add_edge(0, 0, 5);
  b.add_edge(0, 1, 1);
  const Graph g = b.build_undirected();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.total_edge_weight(), 1u);
}

TEST(GraphBuilder, OneDirectionOnlyEdge) {
  GraphBuilder b;
  b.ensure_vertices(3);
  b.add_edge(2, 0, 7);
  const Graph g = b.build_undirected();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.weighted_degree(0), 7u);
  EXPECT_EQ(g.weighted_degree(2), 7u);
  EXPECT_TRUE(g.check_symmetric());
}

TEST(GraphBuilder, VertexWeights) {
  GraphBuilder b;
  const Vertex v = b.add_vertex(3);
  b.add_vertex_weight(v, 4);
  const Graph g = b.build_directed();
  EXPECT_EQ(g.vertex_weight(v), 7u);
  EXPECT_EQ(g.total_vertex_weight(), 7u);
}

TEST(GraphBuilder, EdgeToMissingVertexThrows) {
  GraphBuilder b;
  b.ensure_vertices(1);
  EXPECT_THROW(b.add_edge(0, 5), util::CheckFailure);
}

TEST(GraphBuilder, ClearResets) {
  GraphBuilder b;
  b.ensure_vertices(2);
  b.add_edge(0, 1);
  b.clear();
  EXPECT_EQ(b.num_vertices(), 0u);
  EXPECT_EQ(b.num_edges(), 0u);
  EXPECT_EQ(b.total_edge_weight(), 0u);
}

TEST(GraphBuilder, EdgeInsertFlagsFirstUseOnly) {
  GraphBuilder b;
  b.ensure_vertices(3);
  const EdgeInsert first = b.add_edge(0, 1);
  EXPECT_TRUE(first.new_directed_edge);
  EXPECT_TRUE(first.new_undirected_edge);
  // The reverse direction is a new directed edge but the pair {0,1}
  // already interacted.
  const EdgeInsert reverse = b.add_edge(1, 0);
  EXPECT_TRUE(reverse.new_directed_edge);
  EXPECT_FALSE(reverse.new_undirected_edge);
  const EdgeInsert repeat = b.add_edge(0, 1, 4);
  EXPECT_FALSE(repeat.new_directed_edge);
  EXPECT_FALSE(repeat.new_undirected_edge);
  // Self-loops never create undirected edges.
  const EdgeInsert loop = b.add_edge(2, 2);
  EXPECT_TRUE(loop.new_directed_edge);
  EXPECT_FALSE(loop.new_undirected_edge);
  EXPECT_EQ(b.num_edges(), 3u);
  EXPECT_EQ(b.num_undirected_edges(), 1u);
}

TEST(GraphBuilder, UndirectedNeighborsDistinctInInsertionOrder) {
  GraphBuilder b;
  b.ensure_vertices(4);
  b.add_edge(1, 3);
  b.add_edge(0, 1);
  b.add_edge(3, 1, 2);  // same pair as the first edge — no new neighbor
  b.add_edge(1, 1);     // self-loop — never a neighbor
  b.add_edge(1, 2);
  const auto n1 = b.undirected_neighbors(1);
  ASSERT_EQ(n1.size(), 3u);
  EXPECT_EQ(n1[0], 3u);
  EXPECT_EQ(n1[1], 0u);
  EXPECT_EQ(n1[2], 2u);
  ASSERT_EQ(b.undirected_neighbors(3).size(), 1u);
  EXPECT_EQ(b.undirected_neighbors(3)[0], 1u);
  EXPECT_TRUE(b.undirected_neighbors(2).size() == 1);
}

TEST(GraphBuilder, UntrackedBuilderBuildsIdenticalSnapshots) {
  util::Rng rng(11);
  GraphBuilder tracked(/*track_und_neighbors=*/true);
  GraphBuilder untracked(/*track_und_neighbors=*/false);
  tracked.ensure_vertices(40);
  untracked.ensure_vertices(40);
  for (int i = 0; i < 300; ++i) {
    const Vertex u = rng.uniform(40);
    const Vertex v = rng.uniform(40);
    const Weight w = 1 + rng.uniform(3);
    tracked.add_edge(u, v, w);
    untracked.add_edge(u, v, w);
  }
  EXPECT_EQ(tracked.build_undirected(), untracked.build_undirected());
  EXPECT_EQ(tracked.build_directed(), untracked.build_directed());
  EXPECT_EQ(tracked.num_undirected_edges(), untracked.num_undirected_edges());
  EXPECT_THROW(untracked.undirected_neighbors(0), util::CheckFailure);
}

TEST(GraphBuilder, InducedMatchesWholeGraphInduced) {
  util::Rng rng(7);
  GraphBuilder b;
  b.ensure_vertices(30, 1);
  for (int i = 0; i < 200; ++i)
    b.add_edge(rng.uniform(30), rng.uniform(30), 1 + rng.uniform(5));
  std::vector<Vertex> keep;
  for (Vertex v = 0; v < 30; v += 2) keep.push_back(v);

  std::vector<Vertex> scratch;  // grown on demand
  const Graph direct = b.build_undirected_induced(keep, scratch);
  const Graph via_snapshot = b.build_undirected().induced_subgraph(keep);
  EXPECT_EQ(direct, via_snapshot);
  // The scratch contract: restored to all-kInvalid for the next call.
  for (Vertex v : scratch) EXPECT_EQ(v, Graph::kInvalid);
  EXPECT_EQ(b.build_undirected_induced(keep, scratch), via_snapshot);
}

TEST(GraphBuilder, InducedRejectsDirtyScratch) {
  GraphBuilder b;
  b.ensure_vertices(3);
  b.add_edge(0, 1);
  std::vector<Vertex> scratch(3, Graph::kInvalid);
  scratch[2] = 0;  // stale mapping from a buggy caller
  const std::vector<Vertex> keep = {1, 2};
  EXPECT_THROW(b.build_undirected_induced(keep, scratch),
               util::CheckFailure);
}

TEST(GraphBuilder, ResetEdgesKeepsVerticesDropsEdges) {
  GraphBuilder b;
  b.ensure_vertices(3, 5);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 2, 3);
  b.reset_edges(/*default_vertex_weight=*/0);
  EXPECT_EQ(b.num_vertices(), 3u);
  EXPECT_EQ(b.num_edges(), 0u);
  EXPECT_EQ(b.num_undirected_edges(), 0u);
  EXPECT_EQ(b.total_edge_weight(), 0u);
  EXPECT_EQ(b.vertex_weight(1), 0u);
  EXPECT_EQ(b.undirected_neighbors(1).size(), 0u);
  // The builder is fully reusable after a reset.
  b.add_edge(2, 0, 7);
  EXPECT_EQ(b.num_edges(), 1u);
  EXPECT_EQ(b.edge_weight(2, 0), 7u);
  EXPECT_EQ(b.build_undirected().num_edges(), 1u);
}

// ------------------------------------------------------------------ CSR

TEST(Graph, FromAdjacencySortsNeighbors) {
  std::vector<std::vector<Arc>> adj(3);
  adj[0] = {Arc{2, 1}, Arc{1, 1}};
  const Graph g =
      Graph::from_adjacency(std::move(adj), {1, 1, 1}, /*directed=*/true);
  EXPECT_EQ(g.neighbors(0)[0].to, 1u);
  EXPECT_EQ(g.neighbors(0)[1].to, 2u);
}

TEST(Graph, FromCsrValidatesOffsets) {
  EXPECT_THROW(
      Graph::from_csr({0, 2}, {Arc{0, 1}}, {1}, true),
      util::CheckFailure);
}

TEST(Graph, FromCsrRejectsOutOfRangeTarget) {
  EXPECT_THROW(Graph::from_csr({0, 1}, {Arc{5, 1}}, {1}, true),
               util::CheckFailure);
}

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, ToUndirectedOnDirectedTriangle) {
  GraphBuilder b;
  b.ensure_vertices(3);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 2);
  b.add_edge(2, 0, 3);
  const Graph d = b.build_directed();
  const Graph u = d.to_undirected();
  EXPECT_EQ(u.num_edges(), 3u);
  EXPECT_EQ(u.total_edge_weight(), 6u);
  EXPECT_TRUE(u.check_symmetric());
  EXPECT_EQ(u.total_vertex_weight(), d.total_vertex_weight());
}

TEST(Graph, BuildUndirectedMatchesToUndirected) {
  util::Rng rng(5);
  GraphBuilder b;
  b.ensure_vertices(50);
  for (int i = 0; i < 400; ++i) {
    const Vertex u = rng.uniform(50);
    const Vertex v = rng.uniform(50);
    b.add_edge(u, v, 1 + rng.uniform(4));
  }
  const Graph a = b.build_undirected();
  const Graph c = b.build_directed().to_undirected();
  ASSERT_EQ(a.num_vertices(), c.num_vertices());
  ASSERT_EQ(a.num_edges(), c.num_edges());
  EXPECT_EQ(a.total_edge_weight(), c.total_edge_weight());
  for (Vertex v = 0; v < a.num_vertices(); ++v) {
    const auto na = a.neighbors(v);
    const auto nc = c.neighbors(v);
    ASSERT_EQ(na.size(), nc.size()) << "vertex " << v;
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].to, nc[i].to);
      EXPECT_EQ(na[i].weight, nc[i].weight);
    }
  }
}

// ------------------------------------------------------------- subgraph

TEST(Graph, InducedSubgraphKeepsInternalEdges) {
  const Graph g = make_path(5);  // 0-1-2-3-4
  const std::vector<Vertex> keep = {1, 2, 3};
  std::vector<Vertex> map;
  const Graph sub = g.induced_subgraph(keep, &map);
  EXPECT_EQ(sub.num_vertices(), 3u);
  EXPECT_EQ(sub.num_edges(), 2u);  // 1-2, 2-3 survive
  EXPECT_EQ(map[0], Graph::kInvalid);
  EXPECT_EQ(map[1], 0u);
  EXPECT_EQ(map[4], Graph::kInvalid);
  EXPECT_TRUE(sub.check_symmetric());
}

TEST(Graph, InducedSubgraphPreservesWeights) {
  GraphBuilder b;
  b.ensure_vertices(3, 1);
  b.add_vertex_weight(1, 9);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 2, 7);
  const Graph g = b.build_undirected();
  const Graph sub = g.induced_subgraph(std::vector<Vertex>{0, 1});
  EXPECT_EQ(sub.vertex_weight(1), 10u);
  EXPECT_EQ(sub.total_edge_weight(), 5u);
}

TEST(Graph, InducedSubgraphRejectsDuplicates) {
  const Graph g = make_path(3);
  EXPECT_THROW(g.induced_subgraph(std::vector<Vertex>{0, 0}),
               util::CheckFailure);
}

TEST(Graph, InducedSubgraphEmptySelection) {
  const Graph g = make_path(3);
  const Graph sub = g.induced_subgraph(std::vector<Vertex>{});
  EXPECT_TRUE(sub.empty());
}

// ----------------------------------------------------------- generators

TEST(Generators, PathShape) {
  const Graph g = make_path(10);
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(5), 2u);
}

TEST(Generators, CycleShape) {
  const Graph g = make_cycle(7);
  EXPECT_EQ(g.num_edges(), 7u);
  for (Vertex v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Generators, CompleteShape) {
  const Graph g = make_complete(6);
  EXPECT_EQ(g.num_edges(), 15u);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5u);
}

TEST(Generators, GridShape) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 2 * 4);  // horizontal + vertical
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(5), 4u);   // interior
}

TEST(Generators, ErdosRenyiDensity) {
  util::Rng rng(9);
  const Graph g = make_erdos_renyi(100, 0.1, rng);
  const double expected = 0.1 * 100 * 99 / 2;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              0.25 * expected);
  EXPECT_TRUE(g.check_symmetric());
}

TEST(Generators, BarabasiAlbertHasHubs) {
  util::Rng rng(13);
  const Graph g = make_barabasi_albert(500, 2, rng);
  EXPECT_EQ(g.num_vertices(), 500u);
  std::uint64_t max_deg = 0;
  for (Vertex v = 0; v < 500; ++v) max_deg = std::max(max_deg, g.degree(v));
  // Preferential attachment produces hubs far above the mean degree (~4).
  EXPECT_GT(max_deg, 20u);
  EXPECT_TRUE(g.check_symmetric());
}

TEST(Generators, PlantedPartitionCommunitySizes) {
  util::Rng rng(17);
  const Graph g = make_planted_partition(4, 25, 0.5, 0.01, rng);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_TRUE(g.check_symmetric());
}

TEST(Generators, TwoCliquesBridgeCount) {
  const Graph g = make_two_cliques(20, 3);
  const std::uint64_t clique_edges = 2 * (10 * 9 / 2);
  EXPECT_EQ(g.num_edges(), clique_edges + 3);
}

TEST(Generators, TwoCliquesRejectsTooManyBridges) {
  EXPECT_THROW(make_two_cliques(10, 6), util::CheckFailure);
}

// ------------------------------------------------------------------ dot

TEST(Dot, DirectedOutput) {
  GraphBuilder b;
  b.ensure_vertices(2);
  b.add_edge(0, 1, 3);
  const std::string dot = to_dot(b.build_directed());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("v0 -> v1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"3\""), std::string::npos);
}

TEST(Dot, HidesUnitWeights) {
  GraphBuilder b;
  b.ensure_vertices(2);
  b.add_edge(0, 1, 1);
  const std::string dot = to_dot(b.build_directed());
  // The weight-1 edge is emitted without a label attribute (node labels
  // still carry ids, so look at the edge statement specifically).
  EXPECT_NE(dot.find("v0 -> v1;"), std::string::npos);
  EXPECT_EQ(dot.find("v0 -> v1 [label"), std::string::npos);
}

TEST(Dot, ContractStyling) {
  GraphBuilder b;
  b.ensure_vertices(2);
  b.add_edge(0, 1);
  DotOptions opts;
  opts.is_contract = [](Vertex v) { return v == 1; };
  const std::string dot = to_dot(b.build_directed(), opts);
  EXPECT_NE(dot.find("v1 [label=\"1\", style=dashed]"), std::string::npos);
}

TEST(Dot, UndirectedEmitsEachEdgeOnce) {
  const std::string dot = to_dot(make_path(3));
  EXPECT_NE(dot.find("v0 -- v1"), std::string::npos);
  EXPECT_NE(dot.find("v1 -- v2"), std::string::npos);
  EXPECT_EQ(dot.find("v1 -- v0"), std::string::npos);
}

// -------------------------------------------------------------- analysis

TEST(Analysis, SingleComponentPath) {
  const Components c = connected_components(make_path(6));
  EXPECT_EQ(c.count(), 1u);
  EXPECT_EQ(c.largest(), 6u);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(c.component_of[v], 0u);
}

TEST(Analysis, DisjointCliquesAreSeparate) {
  GraphBuilder b;
  b.ensure_vertices(8);
  for (Vertex i = 0; i < 4; ++i)
    for (Vertex j = i + 1; j < 4; ++j) {
      b.add_edge(i, j);
      b.add_edge(4 + i, 4 + j);
    }
  const Components c = connected_components(b.build_undirected());
  EXPECT_EQ(c.count(), 2u);
  EXPECT_EQ(c.sizes[0], 4u);
  EXPECT_EQ(c.sizes[1], 4u);
  EXPECT_NE(c.component_of[0], c.component_of[5]);
}

TEST(Analysis, IsolatedVerticesAreSingletons) {
  GraphBuilder b;
  b.ensure_vertices(5);
  b.add_edge(0, 1);
  const Components c = connected_components(b.build_undirected());
  EXPECT_EQ(c.count(), 4u);  // {0,1} + three singletons
  EXPECT_EQ(c.largest(), 2u);
}

TEST(Analysis, WeakComponentsOnDirectedGraph) {
  // 0 → 1 ← 2: weakly one component even though no directed path 0→2.
  GraphBuilder b;
  b.ensure_vertices(3);
  b.add_edge(0, 1);
  b.add_edge(2, 1);
  const Components c = connected_components(b.build_directed());
  EXPECT_EQ(c.count(), 1u);
  EXPECT_EQ(c.largest(), 3u);
}

TEST(Analysis, EmptyGraphComponents) {
  const Components c = connected_components(Graph{});
  EXPECT_EQ(c.count(), 0u);
  EXPECT_EQ(c.largest(), 0u);
}

TEST(Analysis, DegreeStatisticsOnStar) {
  GraphBuilder b;
  b.ensure_vertices(6);
  for (Vertex leaf = 1; leaf <= 4; ++leaf) b.add_edge(0, leaf);
  // vertex 5 isolated
  const DegreeStats s = degree_statistics(b.build_undirected());
  EXPECT_EQ(s.max_degree, 4u);
  EXPECT_EQ(s.max_degree_vertex, 0u);
  EXPECT_EQ(s.min_degree, 0u);
  EXPECT_EQ(s.isolated, 1u);
  EXPECT_DOUBLE_EQ(s.mean_degree, 8.0 / 6.0);
  EXPECT_DOUBLE_EQ(s.median_degree, 1.0);
}

TEST(Analysis, DegreeStatisticsEmpty) {
  const DegreeStats s = degree_statistics(Graph{});
  EXPECT_EQ(s.max_degree, 0u);
  EXPECT_EQ(s.isolated, 0u);
}

TEST(Analysis, KCoreOfCliqueIsUniform) {
  const CoreDecomposition d = kcore_decomposition(make_complete(6));
  EXPECT_EQ(d.max_core, 5u);
  EXPECT_EQ(d.nucleus_size, 6u);
  for (std::uint64_t c : d.core_of) EXPECT_EQ(c, 5u);
}

TEST(Analysis, KCoreOfPathIsOne) {
  const CoreDecomposition d = kcore_decomposition(make_path(10));
  EXPECT_EQ(d.max_core, 1u);
  for (std::uint64_t c : d.core_of) EXPECT_EQ(c, 1u);
}

TEST(Analysis, KCoreSeparatesCliqueFromPendants) {
  // K5 with a pendant chain hanging off vertex 0.
  GraphBuilder b;
  b.ensure_vertices(8);
  for (Vertex i = 0; i < 5; ++i)
    for (Vertex j = i + 1; j < 5; ++j) b.add_edge(i, j);
  b.add_edge(0, 5);
  b.add_edge(5, 6);
  b.add_edge(6, 7);
  const CoreDecomposition d = kcore_decomposition(b.build_undirected());
  EXPECT_EQ(d.max_core, 4u);
  EXPECT_EQ(d.nucleus_size, 5u);  // the clique
  EXPECT_EQ(d.core_of[5], 1u);
  EXPECT_EQ(d.core_of[7], 1u);
}

TEST(Analysis, KCoreStarIsOne) {
  GraphBuilder b;
  b.ensure_vertices(7);
  for (Vertex leaf = 1; leaf <= 6; ++leaf) b.add_edge(0, leaf);
  const CoreDecomposition d = kcore_decomposition(b.build_undirected());
  EXPECT_EQ(d.max_core, 1u);
  EXPECT_EQ(d.core_of[0], 1u);  // the hub peels with its leaves
}

TEST(Analysis, KCoreIsolatedVerticesAreZero) {
  GraphBuilder b;
  b.ensure_vertices(3);
  b.add_edge(0, 1);
  const CoreDecomposition d = kcore_decomposition(b.build_undirected());
  EXPECT_EQ(d.core_of[2], 0u);
  EXPECT_EQ(d.core_of[0], 1u);
}

TEST(Analysis, KCoreMonotoneUnderDegree) {
  // Core number never exceeds degree.
  util::Rng rng(93);
  const Graph g = make_barabasi_albert(300, 3, rng);
  const CoreDecomposition d = kcore_decomposition(g);
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    EXPECT_LE(d.core_of[v], g.degree(v));
  EXPECT_GE(d.max_core, 3u);  // BA(m=3) has a >=3-core
}

TEST(Analysis, TriangleCountKnownGraphs) {
  EXPECT_EQ(clustering(make_complete(4)).triangles, 4u);
  EXPECT_EQ(clustering(make_complete(5)).triangles, 10u);
  EXPECT_EQ(clustering(make_path(10)).triangles, 0u);
  EXPECT_EQ(clustering(make_cycle(5)).triangles, 0u);
  EXPECT_EQ(clustering(make_cycle(3)).triangles, 1u);
}

TEST(Analysis, ClusteringCoefficientBounds) {
  // Complete graph: every wedge closes → coefficient 1.
  EXPECT_DOUBLE_EQ(clustering(make_complete(6)).global_coefficient, 1.0);
  // Star: no triangles.
  GraphBuilder b;
  b.ensure_vertices(5);
  for (Vertex leaf = 1; leaf <= 4; ++leaf) b.add_edge(0, leaf);
  EXPECT_DOUBLE_EQ(clustering(b.build_undirected()).global_coefficient,
                   0.0);
}

TEST(Analysis, TwoCliquesTriangles) {
  // Two K10 cliques joined by one bridge: 2 * C(10,3) triangles.
  const Graph g = make_two_cliques(20, 1);
  EXPECT_EQ(clustering(g).triangles, 2u * 120u);
}

TEST(Analysis, ClusteringEmptyGraph) {
  const ClusteringStats s = clustering(Graph{});
  EXPECT_EQ(s.triangles, 0u);
  EXPECT_DOUBLE_EQ(s.global_coefficient, 0.0);
}

// -------------------------------------------------------------- serialize

bool graphs_identical(const Graph& a, const Graph& b) {
  if (a.num_vertices() != b.num_vertices() ||
      a.num_edges() != b.num_edges() || a.directed() != b.directed())
    return false;
  for (Vertex v = 0; v < a.num_vertices(); ++v) {
    if (a.vertex_weight(v) != b.vertex_weight(v)) return false;
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    if (na.size() != nb.size()) return false;
    for (std::size_t i = 0; i < na.size(); ++i)
      if (!(na[i] == nb[i])) return false;
  }
  return true;
}

TEST(Serialize, RoundTripUndirected) {
  util::Rng rng(811);
  const Graph g = make_barabasi_albert(120, 3, rng);
  std::stringstream buffer(std::ios::in | std::ios::out |
                           std::ios::binary);
  save_graph(buffer, g);
  const Graph r = load_graph(buffer);
  EXPECT_TRUE(graphs_identical(g, r));
  EXPECT_TRUE(r.check_symmetric());
}

TEST(Serialize, RoundTripDirectedWithWeights) {
  GraphBuilder b;
  b.ensure_vertices(5, 3);
  b.add_edge(0, 1, 7);
  b.add_edge(1, 0, 2);
  b.add_edge(4, 2, 9);
  b.add_vertex_weight(3, 11);
  const Graph g = b.build_directed();
  std::stringstream buffer(std::ios::in | std::ios::out |
                           std::ios::binary);
  save_graph(buffer, g);
  EXPECT_TRUE(graphs_identical(g, load_graph(buffer)));
}

TEST(Serialize, RoundTripEmptyGraph) {
  std::stringstream buffer(std::ios::in | std::ios::out |
                           std::ios::binary);
  save_graph(buffer, Graph{});
  EXPECT_EQ(load_graph(buffer).num_vertices(), 0u);
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream buffer(std::ios::in | std::ios::out |
                           std::ios::binary);
  buffer << "NOPE and more bytes here to be safe";
  EXPECT_THROW(load_graph(buffer), util::CheckFailure);
}

TEST(Serialize, RejectsTruncation) {
  const Graph g = make_path(20);
  std::stringstream buffer(std::ios::in | std::ios::out |
                           std::ios::binary);
  save_graph(buffer, g);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() / 2);
  std::istringstream cut(bytes, std::ios::binary);
  EXPECT_THROW(load_graph(cut), util::CheckFailure);
}

TEST(Serialize, FileRoundTrip) {
  const Graph g = make_grid(6, 7);
  const std::string path = "/tmp/ethshard_graph_snapshot_test.bin";
  save_graph_file(path, g);
  EXPECT_TRUE(graphs_identical(g, load_graph_file(path)));
}

// --------------------------------------------------- randomized property

TEST(GraphProperty, UndirectedTotalsConsistent) {
  util::Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    GraphBuilder b;
    const std::uint64_t n = 10 + rng.uniform(40);
    b.ensure_vertices(n);
    const int m = static_cast<int>(rng.uniform(200));
    for (int i = 0; i < m; ++i)
      b.add_edge(rng.uniform(n), rng.uniform(n), 1 + rng.uniform(3));
    const Graph g = b.build_undirected();
    EXPECT_TRUE(g.check_symmetric());
    // Sum of weighted degrees equals twice the total edge weight.
    graph::Weight sum = 0;
    for (Vertex v = 0; v < n; ++v) sum += g.weighted_degree(v);
    EXPECT_EQ(sum, 2 * g.total_edge_weight());
  }
}

}  // namespace
}  // namespace ethshard::graph
