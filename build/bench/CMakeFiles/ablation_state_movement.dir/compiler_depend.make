# Empty compiler generated dependencies file for ablation_state_movement.
# This may be replaced when dependencies are built.
