file(REMOVE_RECURSE
  "CMakeFiles/ablation_state_movement.dir/ablation_state_movement.cpp.o"
  "CMakeFiles/ablation_state_movement.dir/ablation_state_movement.cpp.o.d"
  "ablation_state_movement"
  "ablation_state_movement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_state_movement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
