# Empty compiler generated dependencies file for micro_partitioners.
# This may be replaced when dependencies are built.
