file(REMOVE_RECURSE
  "CMakeFiles/ablation_seed_variance.dir/ablation_seed_variance.cpp.o"
  "CMakeFiles/ablation_seed_variance.dir/ablation_seed_variance.cpp.o.d"
  "ablation_seed_variance"
  "ablation_seed_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_seed_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
