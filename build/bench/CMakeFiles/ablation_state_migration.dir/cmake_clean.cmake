file(REMOVE_RECURSE
  "CMakeFiles/ablation_state_migration.dir/ablation_state_migration.cpp.o"
  "CMakeFiles/ablation_state_migration.dir/ablation_state_migration.cpp.o.d"
  "ablation_state_migration"
  "ablation_state_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_state_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
