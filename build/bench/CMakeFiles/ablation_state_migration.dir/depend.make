# Empty dependencies file for ablation_state_migration.
# This may be replaced when dependencies are built.
