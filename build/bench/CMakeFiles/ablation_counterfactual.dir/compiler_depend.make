# Empty compiler generated dependencies file for ablation_counterfactual.
# This may be replaced when dependencies are built.
