file(REMOVE_RECURSE
  "CMakeFiles/ablation_counterfactual.dir/ablation_counterfactual.cpp.o"
  "CMakeFiles/ablation_counterfactual.dir/ablation_counterfactual.cpp.o.d"
  "ablation_counterfactual"
  "ablation_counterfactual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_counterfactual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
