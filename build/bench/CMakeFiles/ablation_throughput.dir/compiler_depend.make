# Empty compiler generated dependencies file for ablation_throughput.
# This may be replaced when dependencies are built.
