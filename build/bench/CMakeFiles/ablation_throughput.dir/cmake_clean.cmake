file(REMOVE_RECURSE
  "CMakeFiles/ablation_throughput.dir/ablation_throughput.cpp.o"
  "CMakeFiles/ablation_throughput.dir/ablation_throughput.cpp.o.d"
  "ablation_throughput"
  "ablation_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
