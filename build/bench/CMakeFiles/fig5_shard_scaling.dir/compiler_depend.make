# Empty compiler generated dependencies file for fig5_shard_scaling.
# This may be replaced when dependencies are built.
