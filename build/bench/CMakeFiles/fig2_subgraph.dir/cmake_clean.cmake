file(REMOVE_RECURSE
  "CMakeFiles/fig2_subgraph.dir/fig2_subgraph.cpp.o"
  "CMakeFiles/fig2_subgraph.dir/fig2_subgraph.cpp.o.d"
  "fig2_subgraph"
  "fig2_subgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_subgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
