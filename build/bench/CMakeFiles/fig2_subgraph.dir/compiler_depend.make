# Empty compiler generated dependencies file for fig2_subgraph.
# This may be replaced when dependencies are built.
