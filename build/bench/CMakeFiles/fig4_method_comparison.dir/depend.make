# Empty dependencies file for fig4_method_comparison.
# This may be replaced when dependencies are built.
