# Empty compiler generated dependencies file for ablation_window_length.
# This may be replaced when dependencies are built.
