# Empty compiler generated dependencies file for fig1_graph_evolution.
# This may be replaced when dependencies are built.
