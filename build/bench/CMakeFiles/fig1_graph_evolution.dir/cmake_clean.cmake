file(REMOVE_RECURSE
  "CMakeFiles/fig1_graph_evolution.dir/fig1_graph_evolution.cpp.o"
  "CMakeFiles/fig1_graph_evolution.dir/fig1_graph_evolution.cpp.o.d"
  "fig1_graph_evolution"
  "fig1_graph_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_graph_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
