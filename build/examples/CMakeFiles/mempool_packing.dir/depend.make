# Empty dependencies file for mempool_packing.
# This may be replaced when dependencies are built.
