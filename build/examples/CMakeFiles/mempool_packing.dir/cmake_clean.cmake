file(REMOVE_RECURSE
  "CMakeFiles/mempool_packing.dir/mempool_packing.cpp.o"
  "CMakeFiles/mempool_packing.dir/mempool_packing.cpp.o.d"
  "mempool_packing"
  "mempool_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mempool_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
