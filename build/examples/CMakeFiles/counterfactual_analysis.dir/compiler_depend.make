# Empty compiler generated dependencies file for counterfactual_analysis.
# This may be replaced when dependencies are built.
