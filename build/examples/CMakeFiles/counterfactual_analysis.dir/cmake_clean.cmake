file(REMOVE_RECURSE
  "CMakeFiles/counterfactual_analysis.dir/counterfactual_analysis.cpp.o"
  "CMakeFiles/counterfactual_analysis.dir/counterfactual_analysis.cpp.o.d"
  "counterfactual_analysis"
  "counterfactual_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counterfactual_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
