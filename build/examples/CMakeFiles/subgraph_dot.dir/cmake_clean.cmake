file(REMOVE_RECURSE
  "CMakeFiles/subgraph_dot.dir/subgraph_dot.cpp.o"
  "CMakeFiles/subgraph_dot.dir/subgraph_dot.cpp.o.d"
  "subgraph_dot"
  "subgraph_dot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subgraph_dot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
