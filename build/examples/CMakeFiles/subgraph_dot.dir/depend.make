# Empty dependencies file for subgraph_dot.
# This may be replaced when dependencies are built.
