# Empty compiler generated dependencies file for real_data_pipeline.
# This may be replaced when dependencies are built.
