file(REMOVE_RECURSE
  "CMakeFiles/real_data_pipeline.dir/real_data_pipeline.cpp.o"
  "CMakeFiles/real_data_pipeline.dir/real_data_pipeline.cpp.o.d"
  "real_data_pipeline"
  "real_data_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_data_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
