file(REMOVE_RECURSE
  "CMakeFiles/custom_strategy.dir/custom_strategy.cpp.o"
  "CMakeFiles/custom_strategy.dir/custom_strategy.cpp.o.d"
  "custom_strategy"
  "custom_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
