
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/partition_test.cpp" "tests/CMakeFiles/test_partition.dir/partition_test.cpp.o" "gcc" "tests/CMakeFiles/test_partition.dir/partition_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ethshard_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ethshard_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/ethshard_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ethshard_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ethshard_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/eth/CMakeFiles/ethshard_eth.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ethshard_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
