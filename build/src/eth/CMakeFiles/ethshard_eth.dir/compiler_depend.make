# Empty compiler generated dependencies file for ethshard_eth.
# This may be replaced when dependencies are built.
