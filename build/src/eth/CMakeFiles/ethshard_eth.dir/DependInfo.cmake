
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eth/address.cpp" "src/eth/CMakeFiles/ethshard_eth.dir/address.cpp.o" "gcc" "src/eth/CMakeFiles/ethshard_eth.dir/address.cpp.o.d"
  "/root/repo/src/eth/block.cpp" "src/eth/CMakeFiles/ethshard_eth.dir/block.cpp.o" "gcc" "src/eth/CMakeFiles/ethshard_eth.dir/block.cpp.o.d"
  "/root/repo/src/eth/bloom.cpp" "src/eth/CMakeFiles/ethshard_eth.dir/bloom.cpp.o" "gcc" "src/eth/CMakeFiles/ethshard_eth.dir/bloom.cpp.o.d"
  "/root/repo/src/eth/chain.cpp" "src/eth/CMakeFiles/ethshard_eth.dir/chain.cpp.o" "gcc" "src/eth/CMakeFiles/ethshard_eth.dir/chain.cpp.o.d"
  "/root/repo/src/eth/difficulty.cpp" "src/eth/CMakeFiles/ethshard_eth.dir/difficulty.cpp.o" "gcc" "src/eth/CMakeFiles/ethshard_eth.dir/difficulty.cpp.o.d"
  "/root/repo/src/eth/fork_choice.cpp" "src/eth/CMakeFiles/ethshard_eth.dir/fork_choice.cpp.o" "gcc" "src/eth/CMakeFiles/ethshard_eth.dir/fork_choice.cpp.o.d"
  "/root/repo/src/eth/gas.cpp" "src/eth/CMakeFiles/ethshard_eth.dir/gas.cpp.o" "gcc" "src/eth/CMakeFiles/ethshard_eth.dir/gas.cpp.o.d"
  "/root/repo/src/eth/keccak.cpp" "src/eth/CMakeFiles/ethshard_eth.dir/keccak.cpp.o" "gcc" "src/eth/CMakeFiles/ethshard_eth.dir/keccak.cpp.o.d"
  "/root/repo/src/eth/mempool.cpp" "src/eth/CMakeFiles/ethshard_eth.dir/mempool.cpp.o" "gcc" "src/eth/CMakeFiles/ethshard_eth.dir/mempool.cpp.o.d"
  "/root/repo/src/eth/merkle.cpp" "src/eth/CMakeFiles/ethshard_eth.dir/merkle.cpp.o" "gcc" "src/eth/CMakeFiles/ethshard_eth.dir/merkle.cpp.o.d"
  "/root/repo/src/eth/pow.cpp" "src/eth/CMakeFiles/ethshard_eth.dir/pow.cpp.o" "gcc" "src/eth/CMakeFiles/ethshard_eth.dir/pow.cpp.o.d"
  "/root/repo/src/eth/rlp.cpp" "src/eth/CMakeFiles/ethshard_eth.dir/rlp.cpp.o" "gcc" "src/eth/CMakeFiles/ethshard_eth.dir/rlp.cpp.o.d"
  "/root/repo/src/eth/state.cpp" "src/eth/CMakeFiles/ethshard_eth.dir/state.cpp.o" "gcc" "src/eth/CMakeFiles/ethshard_eth.dir/state.cpp.o.d"
  "/root/repo/src/eth/transaction.cpp" "src/eth/CMakeFiles/ethshard_eth.dir/transaction.cpp.o" "gcc" "src/eth/CMakeFiles/ethshard_eth.dir/transaction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ethshard_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
