file(REMOVE_RECURSE
  "libethshard_eth.a"
)
