file(REMOVE_RECURSE
  "CMakeFiles/ethshard_eth.dir/address.cpp.o"
  "CMakeFiles/ethshard_eth.dir/address.cpp.o.d"
  "CMakeFiles/ethshard_eth.dir/block.cpp.o"
  "CMakeFiles/ethshard_eth.dir/block.cpp.o.d"
  "CMakeFiles/ethshard_eth.dir/bloom.cpp.o"
  "CMakeFiles/ethshard_eth.dir/bloom.cpp.o.d"
  "CMakeFiles/ethshard_eth.dir/chain.cpp.o"
  "CMakeFiles/ethshard_eth.dir/chain.cpp.o.d"
  "CMakeFiles/ethshard_eth.dir/difficulty.cpp.o"
  "CMakeFiles/ethshard_eth.dir/difficulty.cpp.o.d"
  "CMakeFiles/ethshard_eth.dir/fork_choice.cpp.o"
  "CMakeFiles/ethshard_eth.dir/fork_choice.cpp.o.d"
  "CMakeFiles/ethshard_eth.dir/gas.cpp.o"
  "CMakeFiles/ethshard_eth.dir/gas.cpp.o.d"
  "CMakeFiles/ethshard_eth.dir/keccak.cpp.o"
  "CMakeFiles/ethshard_eth.dir/keccak.cpp.o.d"
  "CMakeFiles/ethshard_eth.dir/mempool.cpp.o"
  "CMakeFiles/ethshard_eth.dir/mempool.cpp.o.d"
  "CMakeFiles/ethshard_eth.dir/merkle.cpp.o"
  "CMakeFiles/ethshard_eth.dir/merkle.cpp.o.d"
  "CMakeFiles/ethshard_eth.dir/pow.cpp.o"
  "CMakeFiles/ethshard_eth.dir/pow.cpp.o.d"
  "CMakeFiles/ethshard_eth.dir/rlp.cpp.o"
  "CMakeFiles/ethshard_eth.dir/rlp.cpp.o.d"
  "CMakeFiles/ethshard_eth.dir/state.cpp.o"
  "CMakeFiles/ethshard_eth.dir/state.cpp.o.d"
  "CMakeFiles/ethshard_eth.dir/transaction.cpp.o"
  "CMakeFiles/ethshard_eth.dir/transaction.cpp.o.d"
  "libethshard_eth.a"
  "libethshard_eth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethshard_eth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
