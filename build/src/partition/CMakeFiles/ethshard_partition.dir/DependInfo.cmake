
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/blp.cpp" "src/partition/CMakeFiles/ethshard_partition.dir/blp.cpp.o" "gcc" "src/partition/CMakeFiles/ethshard_partition.dir/blp.cpp.o.d"
  "/root/repo/src/partition/coarsen.cpp" "src/partition/CMakeFiles/ethshard_partition.dir/coarsen.cpp.o" "gcc" "src/partition/CMakeFiles/ethshard_partition.dir/coarsen.cpp.o.d"
  "/root/repo/src/partition/ensemble.cpp" "src/partition/CMakeFiles/ethshard_partition.dir/ensemble.cpp.o" "gcc" "src/partition/CMakeFiles/ethshard_partition.dir/ensemble.cpp.o.d"
  "/root/repo/src/partition/fm.cpp" "src/partition/CMakeFiles/ethshard_partition.dir/fm.cpp.o" "gcc" "src/partition/CMakeFiles/ethshard_partition.dir/fm.cpp.o.d"
  "/root/repo/src/partition/hash_partitioner.cpp" "src/partition/CMakeFiles/ethshard_partition.dir/hash_partitioner.cpp.o" "gcc" "src/partition/CMakeFiles/ethshard_partition.dir/hash_partitioner.cpp.o.d"
  "/root/repo/src/partition/initial_bisection.cpp" "src/partition/CMakeFiles/ethshard_partition.dir/initial_bisection.cpp.o" "gcc" "src/partition/CMakeFiles/ethshard_partition.dir/initial_bisection.cpp.o.d"
  "/root/repo/src/partition/kernighan_lin.cpp" "src/partition/CMakeFiles/ethshard_partition.dir/kernighan_lin.cpp.o" "gcc" "src/partition/CMakeFiles/ethshard_partition.dir/kernighan_lin.cpp.o.d"
  "/root/repo/src/partition/kway_refine.cpp" "src/partition/CMakeFiles/ethshard_partition.dir/kway_refine.cpp.o" "gcc" "src/partition/CMakeFiles/ethshard_partition.dir/kway_refine.cpp.o.d"
  "/root/repo/src/partition/metis_io.cpp" "src/partition/CMakeFiles/ethshard_partition.dir/metis_io.cpp.o" "gcc" "src/partition/CMakeFiles/ethshard_partition.dir/metis_io.cpp.o.d"
  "/root/repo/src/partition/mlkp.cpp" "src/partition/CMakeFiles/ethshard_partition.dir/mlkp.cpp.o" "gcc" "src/partition/CMakeFiles/ethshard_partition.dir/mlkp.cpp.o.d"
  "/root/repo/src/partition/quality.cpp" "src/partition/CMakeFiles/ethshard_partition.dir/quality.cpp.o" "gcc" "src/partition/CMakeFiles/ethshard_partition.dir/quality.cpp.o.d"
  "/root/repo/src/partition/recursive_bisection.cpp" "src/partition/CMakeFiles/ethshard_partition.dir/recursive_bisection.cpp.o" "gcc" "src/partition/CMakeFiles/ethshard_partition.dir/recursive_bisection.cpp.o.d"
  "/root/repo/src/partition/spectral.cpp" "src/partition/CMakeFiles/ethshard_partition.dir/spectral.cpp.o" "gcc" "src/partition/CMakeFiles/ethshard_partition.dir/spectral.cpp.o.d"
  "/root/repo/src/partition/streaming.cpp" "src/partition/CMakeFiles/ethshard_partition.dir/streaming.cpp.o" "gcc" "src/partition/CMakeFiles/ethshard_partition.dir/streaming.cpp.o.d"
  "/root/repo/src/partition/types.cpp" "src/partition/CMakeFiles/ethshard_partition.dir/types.cpp.o" "gcc" "src/partition/CMakeFiles/ethshard_partition.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ethshard_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ethshard_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
