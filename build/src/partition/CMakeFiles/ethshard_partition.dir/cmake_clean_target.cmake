file(REMOVE_RECURSE
  "libethshard_partition.a"
)
