# Empty dependencies file for ethshard_partition.
# This may be replaced when dependencies are built.
