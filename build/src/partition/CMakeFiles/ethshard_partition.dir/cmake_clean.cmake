file(REMOVE_RECURSE
  "CMakeFiles/ethshard_partition.dir/blp.cpp.o"
  "CMakeFiles/ethshard_partition.dir/blp.cpp.o.d"
  "CMakeFiles/ethshard_partition.dir/coarsen.cpp.o"
  "CMakeFiles/ethshard_partition.dir/coarsen.cpp.o.d"
  "CMakeFiles/ethshard_partition.dir/ensemble.cpp.o"
  "CMakeFiles/ethshard_partition.dir/ensemble.cpp.o.d"
  "CMakeFiles/ethshard_partition.dir/fm.cpp.o"
  "CMakeFiles/ethshard_partition.dir/fm.cpp.o.d"
  "CMakeFiles/ethshard_partition.dir/hash_partitioner.cpp.o"
  "CMakeFiles/ethshard_partition.dir/hash_partitioner.cpp.o.d"
  "CMakeFiles/ethshard_partition.dir/initial_bisection.cpp.o"
  "CMakeFiles/ethshard_partition.dir/initial_bisection.cpp.o.d"
  "CMakeFiles/ethshard_partition.dir/kernighan_lin.cpp.o"
  "CMakeFiles/ethshard_partition.dir/kernighan_lin.cpp.o.d"
  "CMakeFiles/ethshard_partition.dir/kway_refine.cpp.o"
  "CMakeFiles/ethshard_partition.dir/kway_refine.cpp.o.d"
  "CMakeFiles/ethshard_partition.dir/metis_io.cpp.o"
  "CMakeFiles/ethshard_partition.dir/metis_io.cpp.o.d"
  "CMakeFiles/ethshard_partition.dir/mlkp.cpp.o"
  "CMakeFiles/ethshard_partition.dir/mlkp.cpp.o.d"
  "CMakeFiles/ethshard_partition.dir/quality.cpp.o"
  "CMakeFiles/ethshard_partition.dir/quality.cpp.o.d"
  "CMakeFiles/ethshard_partition.dir/recursive_bisection.cpp.o"
  "CMakeFiles/ethshard_partition.dir/recursive_bisection.cpp.o.d"
  "CMakeFiles/ethshard_partition.dir/spectral.cpp.o"
  "CMakeFiles/ethshard_partition.dir/spectral.cpp.o.d"
  "CMakeFiles/ethshard_partition.dir/streaming.cpp.o"
  "CMakeFiles/ethshard_partition.dir/streaming.cpp.o.d"
  "CMakeFiles/ethshard_partition.dir/types.cpp.o"
  "CMakeFiles/ethshard_partition.dir/types.cpp.o.d"
  "libethshard_partition.a"
  "libethshard_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethshard_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
