file(REMOVE_RECURSE
  "libethshard_util.a"
)
