file(REMOVE_RECURSE
  "CMakeFiles/ethshard_util.dir/args.cpp.o"
  "CMakeFiles/ethshard_util.dir/args.cpp.o.d"
  "CMakeFiles/ethshard_util.dir/csv.cpp.o"
  "CMakeFiles/ethshard_util.dir/csv.cpp.o.d"
  "CMakeFiles/ethshard_util.dir/hash.cpp.o"
  "CMakeFiles/ethshard_util.dir/hash.cpp.o.d"
  "CMakeFiles/ethshard_util.dir/parallel.cpp.o"
  "CMakeFiles/ethshard_util.dir/parallel.cpp.o.d"
  "CMakeFiles/ethshard_util.dir/rng.cpp.o"
  "CMakeFiles/ethshard_util.dir/rng.cpp.o.d"
  "CMakeFiles/ethshard_util.dir/sim_time.cpp.o"
  "CMakeFiles/ethshard_util.dir/sim_time.cpp.o.d"
  "libethshard_util.a"
  "libethshard_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethshard_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
