# Empty compiler generated dependencies file for ethshard_util.
# This may be replaced when dependencies are built.
