
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/analysis.cpp" "src/workload/CMakeFiles/ethshard_workload.dir/analysis.cpp.o" "gcc" "src/workload/CMakeFiles/ethshard_workload.dir/analysis.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/ethshard_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/ethshard_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/growth_model.cpp" "src/workload/CMakeFiles/ethshard_workload.dir/growth_model.cpp.o" "gcc" "src/workload/CMakeFiles/ethshard_workload.dir/growth_model.cpp.o.d"
  "/root/repo/src/workload/import.cpp" "src/workload/CMakeFiles/ethshard_workload.dir/import.cpp.o" "gcc" "src/workload/CMakeFiles/ethshard_workload.dir/import.cpp.o.d"
  "/root/repo/src/workload/presets.cpp" "src/workload/CMakeFiles/ethshard_workload.dir/presets.cpp.o" "gcc" "src/workload/CMakeFiles/ethshard_workload.dir/presets.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/workload/CMakeFiles/ethshard_workload.dir/trace_io.cpp.o" "gcc" "src/workload/CMakeFiles/ethshard_workload.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eth/CMakeFiles/ethshard_eth.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ethshard_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
