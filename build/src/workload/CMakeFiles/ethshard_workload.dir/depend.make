# Empty dependencies file for ethshard_workload.
# This may be replaced when dependencies are built.
