file(REMOVE_RECURSE
  "libethshard_workload.a"
)
