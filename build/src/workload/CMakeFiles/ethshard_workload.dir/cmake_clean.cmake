file(REMOVE_RECURSE
  "CMakeFiles/ethshard_workload.dir/analysis.cpp.o"
  "CMakeFiles/ethshard_workload.dir/analysis.cpp.o.d"
  "CMakeFiles/ethshard_workload.dir/generator.cpp.o"
  "CMakeFiles/ethshard_workload.dir/generator.cpp.o.d"
  "CMakeFiles/ethshard_workload.dir/growth_model.cpp.o"
  "CMakeFiles/ethshard_workload.dir/growth_model.cpp.o.d"
  "CMakeFiles/ethshard_workload.dir/import.cpp.o"
  "CMakeFiles/ethshard_workload.dir/import.cpp.o.d"
  "CMakeFiles/ethshard_workload.dir/presets.cpp.o"
  "CMakeFiles/ethshard_workload.dir/presets.cpp.o.d"
  "CMakeFiles/ethshard_workload.dir/trace_io.cpp.o"
  "CMakeFiles/ethshard_workload.dir/trace_io.cpp.o.d"
  "libethshard_workload.a"
  "libethshard_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethshard_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
