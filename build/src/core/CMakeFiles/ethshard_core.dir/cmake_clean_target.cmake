file(REMOVE_RECURSE
  "libethshard_core.a"
)
