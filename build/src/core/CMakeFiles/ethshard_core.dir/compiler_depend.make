# Empty compiler generated dependencies file for ethshard_core.
# This may be replaced when dependencies are built.
