file(REMOVE_RECURSE
  "CMakeFiles/ethshard_core.dir/experiment.cpp.o"
  "CMakeFiles/ethshard_core.dir/experiment.cpp.o.d"
  "CMakeFiles/ethshard_core.dir/placement.cpp.o"
  "CMakeFiles/ethshard_core.dir/placement.cpp.o.d"
  "CMakeFiles/ethshard_core.dir/result_io.cpp.o"
  "CMakeFiles/ethshard_core.dir/result_io.cpp.o.d"
  "CMakeFiles/ethshard_core.dir/simulator.cpp.o"
  "CMakeFiles/ethshard_core.dir/simulator.cpp.o.d"
  "CMakeFiles/ethshard_core.dir/strategies.cpp.o"
  "CMakeFiles/ethshard_core.dir/strategies.cpp.o.d"
  "CMakeFiles/ethshard_core.dir/throughput.cpp.o"
  "CMakeFiles/ethshard_core.dir/throughput.cpp.o.d"
  "libethshard_core.a"
  "libethshard_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethshard_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
