
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/ethshard_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/ethshard_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/core/CMakeFiles/ethshard_core.dir/placement.cpp.o" "gcc" "src/core/CMakeFiles/ethshard_core.dir/placement.cpp.o.d"
  "/root/repo/src/core/result_io.cpp" "src/core/CMakeFiles/ethshard_core.dir/result_io.cpp.o" "gcc" "src/core/CMakeFiles/ethshard_core.dir/result_io.cpp.o.d"
  "/root/repo/src/core/simulator.cpp" "src/core/CMakeFiles/ethshard_core.dir/simulator.cpp.o" "gcc" "src/core/CMakeFiles/ethshard_core.dir/simulator.cpp.o.d"
  "/root/repo/src/core/strategies.cpp" "src/core/CMakeFiles/ethshard_core.dir/strategies.cpp.o" "gcc" "src/core/CMakeFiles/ethshard_core.dir/strategies.cpp.o.d"
  "/root/repo/src/core/throughput.cpp" "src/core/CMakeFiles/ethshard_core.dir/throughput.cpp.o" "gcc" "src/core/CMakeFiles/ethshard_core.dir/throughput.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/ethshard_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/ethshard_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ethshard_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ethshard_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/eth/CMakeFiles/ethshard_eth.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ethshard_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
