# Empty compiler generated dependencies file for ethshard_graph.
# This may be replaced when dependencies are built.
