file(REMOVE_RECURSE
  "CMakeFiles/ethshard_graph.dir/analysis.cpp.o"
  "CMakeFiles/ethshard_graph.dir/analysis.cpp.o.d"
  "CMakeFiles/ethshard_graph.dir/builder.cpp.o"
  "CMakeFiles/ethshard_graph.dir/builder.cpp.o.d"
  "CMakeFiles/ethshard_graph.dir/dot.cpp.o"
  "CMakeFiles/ethshard_graph.dir/dot.cpp.o.d"
  "CMakeFiles/ethshard_graph.dir/generators.cpp.o"
  "CMakeFiles/ethshard_graph.dir/generators.cpp.o.d"
  "CMakeFiles/ethshard_graph.dir/graph.cpp.o"
  "CMakeFiles/ethshard_graph.dir/graph.cpp.o.d"
  "CMakeFiles/ethshard_graph.dir/serialize.cpp.o"
  "CMakeFiles/ethshard_graph.dir/serialize.cpp.o.d"
  "libethshard_graph.a"
  "libethshard_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethshard_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
