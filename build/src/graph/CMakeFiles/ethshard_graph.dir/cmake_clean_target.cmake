file(REMOVE_RECURSE
  "libethshard_graph.a"
)
