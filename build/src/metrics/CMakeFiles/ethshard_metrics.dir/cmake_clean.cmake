file(REMOVE_RECURSE
  "CMakeFiles/ethshard_metrics.dir/metrics.cpp.o"
  "CMakeFiles/ethshard_metrics.dir/metrics.cpp.o.d"
  "CMakeFiles/ethshard_metrics.dir/summary.cpp.o"
  "CMakeFiles/ethshard_metrics.dir/summary.cpp.o.d"
  "CMakeFiles/ethshard_metrics.dir/timeseries.cpp.o"
  "CMakeFiles/ethshard_metrics.dir/timeseries.cpp.o.d"
  "libethshard_metrics.a"
  "libethshard_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethshard_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
