# Empty dependencies file for ethshard_metrics.
# This may be replaced when dependencies are built.
