file(REMOVE_RECURSE
  "libethshard_metrics.a"
)
