# Empty dependencies file for ethshard_cli.
# This may be replaced when dependencies are built.
