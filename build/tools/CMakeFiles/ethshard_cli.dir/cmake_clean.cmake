file(REMOVE_RECURSE
  "CMakeFiles/ethshard_cli.dir/ethshard_cli.cpp.o"
  "CMakeFiles/ethshard_cli.dir/ethshard_cli.cpp.o.d"
  "ethshard"
  "ethshard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ethshard_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
