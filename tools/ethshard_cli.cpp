// ethshard — command-line front end for the library.
//
//   ethshard generate --scale 0.002 --seed 1234 --out trace.csv
//   ethshard stats    --trace trace.csv
//   ethshard simulate --trace trace.csv --method R-METIS --shards 4
//                     [--csv windows.csv]
//   ethshard partition --trace trace.csv --method mlkp --shards 8
//   ethshard dot      --trace trace.csv --from 2015-09-01 --to 2015-10-01
//                     [--max-nodes 20]
//
// `--trace` may be omitted on every subcommand, in which case a synthetic
// history is generated in-process (honouring --scale/--seed/--preset,
// presets: paper, no-attack, ico-frenzy, uniform, transfers-only). This is the
// workflow a user with the authors' published trace would follow: convert
// it to the flat CSV schema (see workload/trace_io.hpp) and point any
// subcommand at it.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "core/experiment.hpp"
#include "core/result_io.hpp"
#include "core/simulator.hpp"
#include "core/strategies.hpp"
#include "core/strategy_registry.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "graph/dot.hpp"
#include "metrics/summary.hpp"
#include "partition/hash_partitioner.hpp"
#include "partition/kernighan_lin.hpp"
#include "partition/metis_io.hpp"
#include "partition/mlkp.hpp"
#include "partition/quality.hpp"
#include "partition/spectral.hpp"
#include "partition/streaming.hpp"
#include "scenario/report.hpp"
#include "util/args.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/mem.hpp"
#include "workload/analysis.hpp"
#include "workload/block_source.hpp"
#include "workload/generator.hpp"
#include "workload/import.hpp"
#include "workload/presets.hpp"
#include "workload/trace_io.hpp"

namespace {

using namespace ethshard;

int usage() {
  std::fprintf(
      stderr,
      "usage: ethshard <command> [flags]\n"
      "\n"
      "commands:\n"
      "  generate   synthesize a history and write it as a CSV trace\n"
      "  stats      history totals and monthly growth (Fig. 1 data)\n"
      "  simulate   replay against a sharding method (Figs. 3-5 data)\n"
      "  partition  one-shot partition of the final graph, all methods\n"
      "  compare    the full method x shard-count grid in one table\n"
      "  dot        Graphviz subgraph export (Fig. 2 style)\n"
      "  import     convert a BigQuery crypto_ethereum.traces CSV export\n"
      "             into the native trace format (--traces PATH --out PATH)\n"
      "  metis-export  write the final graph in METIS .graph format\n"
      "             (--out PATH; then: gpmetis PATH <k>)\n"
      "  metis-eval evaluate a METIS .part file on our metrics\n"
      "             (--part PATH --shards K)\n"
      "\n"
      "workload (what to replay; any command):\n"
      "  --trace PATH         read a CSV trace (see workload/trace_io.hpp)\n"
      "                       instead of generating in-process\n"
      "  --preset NAME        generator scenario: paper (default),\n"
      "                       no-attack, ico-frenzy, uniform, transfers-only\n"
      "  --scale F            fraction of the real chain's volume (0.002)\n"
      "  --seed N             generator seed (1234); also the strategy\n"
      "                       seed for simulate/compare (default 7 there)\n"
      "  --max-scale F        clamp --scale to F (a guard for scripted\n"
      "                       sweeps; 0 = no clamp)\n"
      "  --stream             simulate/compare only: pull blocks from the\n"
      "                       generator or trace file on demand instead of\n"
      "                       materializing the whole history first —\n"
      "                       same results, memory stays ~one window\n"
      "\n"
      "strategy (simulate/partition/compare):\n"
      "  --method SPEC        Hashing|KL|METIS|R-METIS|TR-METIS|DSM\n"
      "                       (P-METIS = R-METIS; tunable, e.g.\n"
      "                       'tr-metis:cut_floor=0.25,min_gap_days=2');\n"
      "                       partition takes a one-shot partitioner name\n"
      "  --shards K|LIST      shard count (2); compare takes a list (2,4,8)\n"
      "  --gas                compare only: gas-based load model\n"
      "\n"
      "replay (simulate, and per-cell for compare):\n"
      "  --threads N          thread budget: mt-MLKP partitioner threads\n"
      "                       for simulate/partition, grid workers for\n"
      "                       compare (whose partitioners auto-fit the\n"
      "                       leftover budget). 0 (default) = serial\n"
      "                       partitioner / hardware-sized grid. Results\n"
      "                       never depend on N (mt-MLKP determinism)\n"
      "  --replay-threads N   window-replay pipelining: auto (= 0, the\n"
      "                       default) starts pipelined and falls back to\n"
      "                       serial when a short measured probe says the\n"
      "                       pipeline can't win; 1 = serial per-call\n"
      "                       replay; >=2 = pipelined unconditionally (a\n"
      "                       background worker aggregates window W+1\n"
      "                       while W is applied). Bit-identical results\n"
      "                       at every N; the spec keys 'replay_threads=',\n"
      "                       'queue_capacity=' (SPSC queue depth) and\n"
      "                       'agg_shards=' (parallel Stage A sub-ranges\n"
      "                       per window) tune the same machinery\n"
      "  --max-rss-mb N       fail (exit 1) if peak resident memory\n"
      "                       exceeds N MiB — pair with --stream to keep\n"
      "                       large-scale replays inside a budget\n"
      "\n"
      "output:\n"
      "  --out PATH           generate/import/metis-export destination\n"
      "  --csv PATH           simulate: per-window samples\n"
      "  --events-csv PATH    simulate: repartition events\n"
      "  --telemetry-out PATH simulate: streaming JSONL, one record per\n"
      "                       window as the replay runs (incl. rss_mb)\n"
      "  --verdict-out PATH   any command: write the resource-budget\n"
      "                       verdict (peak rss vs --max-rss-mb) as\n"
      "                       scenario-report JSON for scripts to parse\n"
      "  --from/--to DATE     dot: window bounds (YYYY-MM-DD)\n"
      "  --max-nodes N        dot: subgraph size cap (20)\n"
      "\n"
      "observability (any command):\n"
      "  --metrics-out PATH   enable metrics; write counters/gauges/timers/\n"
      "                       histograms on exit — JSON, or CSV when PATH\n"
      "                       ends in .csv\n"
      "  --trace-out PATH     enable tracing; write Chrome trace-event\n"
      "                       JSON (chrome://tracing, Perfetto) on exit —\n"
      "                       with --replay-threads >= 2 the pipeline's\n"
      "                       Stage A/Stage B lanes, stall spans and\n"
      "                       queue-depth tracks are included (feed the\n"
      "                       file to tools/trace_report)\n"
      "  --trace-max-spans N  span/counter buffer cap (default ~1M);\n"
      "                       overflow truncates the trace and warns\n");
  return 2;
}

util::Timestamp parse_date(const std::string& s) {
  int y = 0;
  int m = 0;
  int d = 0;
  ETHSHARD_CHECK_MSG(std::sscanf(s.c_str(), "%d-%d-%d", &y, &m, &d) == 3,
                     "bad date '" << s << "' (want YYYY-MM-DD)");
  return util::make_timestamp(y, m, d);
}

/// Generator configuration from --preset/--scale/--seed, with --max-scale
/// applied as a clamp (a guard for scripted sweeps: a fat-fingered scale
/// cannot silently launch a machine-sized run).
workload::GeneratorConfig generator_config(const util::ArgParser& args) {
  const workload::Preset preset =
      workload::preset_from_name(args.get("preset", "paper"));
  double scale = args.get_double("scale", 0.002);
  const double max_scale = args.get_double("max-scale", 0.0);
  if (max_scale > 0.0 && scale > max_scale) {
    std::fprintf(stderr,
                 "[ethshard] clamping --scale %g to --max-scale %g\n",
                 scale, max_scale);
    scale = max_scale;
  }
  return workload::preset_config(
      preset, {.scale = scale, .seed = args.get_uint("seed", 1234)});
}

workload::History load_history(const util::ArgParser& args) {
  const std::string trace = args.get("trace", "");
  if (!trace.empty()) return workload::read_trace_file(trace);
  const workload::GeneratorConfig cfg = generator_config(args);
  std::fprintf(stderr, "[ethshard] generating synthetic history "
                       "preset=%s scale=%g seed=%llu\n",
               args.get("preset", "paper").c_str(), cfg.scale,
               static_cast<unsigned long long>(cfg.seed));
  return workload::EthereumHistoryGenerator(cfg).generate();
}

/// The --stream path's workload: a re-openable source over --trace or the
/// in-process generator — nothing is materialized up front.
std::unique_ptr<workload::BlockSourceFactory> make_source_factory(
    const util::ArgParser& args) {
  const std::string trace = args.get("trace", "");
  if (!trace.empty())
    return std::make_unique<workload::TraceSourceFactory>(trace);
  const workload::GeneratorConfig cfg = generator_config(args);
  std::fprintf(stderr, "[ethshard] streaming synthetic history "
                       "preset=%s scale=%g seed=%llu\n",
               args.get("preset", "paper").c_str(), cfg.scale,
               static_cast<unsigned long long>(cfg.seed));
  return std::make_unique<workload::GeneratedSourceFactory>(cfg);
}

int cmd_generate(const util::ArgParser& args) {
  const std::string out = args.get("out", "");
  ETHSHARD_CHECK_MSG(!out.empty(), "generate requires --out PATH");
  const workload::History history = load_history(args);
  workload::write_trace_file(out, history);
  const workload::HistoryStats st = workload::stats_of(history);
  std::printf("wrote %s: %llu blocks, %llu txs, %llu calls, %llu accounts "
              "(%llu contracts)\n",
              out.c_str(), static_cast<unsigned long long>(st.blocks),
              static_cast<unsigned long long>(st.transactions),
              static_cast<unsigned long long>(st.calls),
              static_cast<unsigned long long>(st.accounts + st.contracts),
              static_cast<unsigned long long>(st.contracts));
  return 0;
}

int cmd_stats(const util::ArgParser& args) {
  const workload::History history = load_history(args);
  const workload::HistoryStats st = workload::stats_of(history);
  std::printf("blocks        %12llu\n",
              static_cast<unsigned long long>(st.blocks));
  std::printf("transactions  %12llu\n",
              static_cast<unsigned long long>(st.transactions));
  std::printf("calls         %12llu\n",
              static_cast<unsigned long long>(st.calls));
  std::printf("accounts      %12llu\n",
              static_cast<unsigned long long>(st.accounts));
  std::printf("contracts     %12llu\n",
              static_cast<unsigned long long>(st.contracts));
  if (history.chain.empty()) return 0;

  std::printf("\n%-8s %12s %12s\n", "month", "vertices", "edges");
  graph::GraphBuilder builder;
  std::vector<bool> seen;
  std::uint64_t vertices = 0;
  util::Timestamp month_end =
      util::add_months(history.chain.blocks().front().timestamp, 1);
  auto emit = [&](util::Timestamp month) {
    std::printf("%-8s %12llu %12llu\n", util::month_label(month).c_str(),
                static_cast<unsigned long long>(vertices),
                static_cast<unsigned long long>(builder.num_edges()));
  };
  for (const eth::Block& b : history.chain.blocks()) {
    while (b.timestamp >= month_end) {
      emit(util::add_months(month_end, -1));
      month_end = util::add_months(month_end, 1);
    }
    for (const eth::Transaction& tx : b.transactions)
      for (const eth::Call& c : tx.calls) {
        for (graph::Vertex v : {c.from, c.to}) {
          if (seen.size() <= v) seen.resize(v + 1, false);
          if (!seen[v]) {
            seen[v] = true;
            ++vertices;
          }
          builder.ensure_vertices(v + 1, 1);
        }
        builder.add_edge(c.from, c.to, 1);
      }
  }
  emit(util::add_months(month_end, -1));

  // Structural summary of the final graph.
  const graph::Graph g = builder.build_undirected();
  const graph::Components comps = graph::connected_components(g);
  const graph::DegreeStats deg = graph::degree_statistics(g);
  std::printf("\nfinal graph: %llu components, largest %llu (%.1f%% of "
              "vertices)\n",
              static_cast<unsigned long long>(comps.count()),
              static_cast<unsigned long long>(comps.largest()),
              g.num_vertices() == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(comps.largest()) /
                        static_cast<double>(g.num_vertices()));
  std::printf("degrees: min %llu, median %.1f, mean %.2f, max %llu "
              "(vertex %llu), %llu isolated\n",
              static_cast<unsigned long long>(deg.min_degree),
              deg.median_degree, deg.mean_degree,
              static_cast<unsigned long long>(deg.max_degree),
              static_cast<unsigned long long>(deg.max_degree_vertex),
              static_cast<unsigned long long>(deg.isolated));

  const workload::WorkloadReport report =
      workload::analyze_workload(history);
  auto print_phase = [](const char* label,
                        const workload::PhaseStats& p) {
    std::printf("%-12s %10llu blocks %10llu txs %10llu calls %10llu "
                "new accounts\n",
                label, static_cast<unsigned long long>(p.blocks),
                static_cast<unsigned long long>(p.transactions),
                static_cast<unsigned long long>(p.calls),
                static_cast<unsigned long long>(p.new_accounts));
  };
  std::printf("\nphases:\n");
  print_phase("pre-attack", report.pre_attack);
  print_phase("attack", report.attack);
  print_phase("post-attack", report.post_attack);
  std::printf("activity gini %.3f, top-1%% share %.3f, single-touch "
              "vertices %llu/%llu\n",
              report.activity_gini, report.top1pct_share,
              static_cast<unsigned long long>(report.single_touch_vertices),
              static_cast<unsigned long long>(report.total_vertices));
  return 0;
}

// --replay-threads accepts "auto" (the measured-probe mode, same as the
// 0 default) alongside a plain count.
std::size_t replay_threads_arg(const util::ArgParser& args) {
  if (args.get("replay-threads", "0") == "auto") return 0;
  const std::uint64_t n = args.get_uint("replay-threads", 0);
  ETHSHARD_CHECK_MSG(n <= 1024,
                     "--replay-threads "
                         << n
                         << " is not plausible — use 'auto' (or 0) for the "
                            "measured auto mode or 1 for serial replay");
  return static_cast<std::size_t>(n);
}

int cmd_simulate(const util::ArgParser& args) {
  // --stream replays through a pull-based BlockSource (generator or
  // trace file) and never materializes the chain; otherwise the whole
  // history is loaded first, exactly as before. Results are
  // bit-identical across the two paths.
  const bool stream = args.get_bool("stream", false);
  std::unique_ptr<workload::BlockSource> source;
  std::optional<workload::History> history;
  if (stream)
    source = make_source_factory(args)->open();
  else
    history.emplace(load_history(args));
  const auto k = static_cast<std::uint32_t>(args.get_uint("shards", 2));

  // --method takes a registry spec: a bare name ("R-METIS", or the
  // paper-figure alias "P-METIS") or name:key=value,... for tuning.
  // --threads sets the mt-MLKP partitioner threads unless the spec's own
  // "threads=" key overrides it (0 = keep the serial default).
  const std::size_t threads =
      static_cast<std::size_t>(args.get_uint("threads", 0));
  core::StrategyBuild build = core::StrategyRegistry::global().make_build(
      args.get("method", "R-METIS"), args.get_uint("seed", 7),
      threads == 0 ? 1 : threads);
  const auto& strategy = build.strategy;
  core::SimulatorConfig cfg;
  cfg.k = k;
  // --replay-threads (or the spec's own "replay_threads=" key, which
  // wins) selects serial vs pipelined vs measured-auto window replay;
  // the result is bit-identical either way, so this is purely a speed
  // knob — as are the spec's queue_capacity= and agg_shards= keys.
  cfg.replay_threads = build.replay_threads != 0
                           ? build.replay_threads
                           : replay_threads_arg(args);
  cfg.queue_capacity = build.queue_capacity;
  cfg.aggregation_shards = build.aggregation_shards;
  std::unique_ptr<core::TelemetrySink> telemetry;
  const std::string telemetry_path = args.get("telemetry-out", "");
  if (!telemetry_path.empty()) {
    telemetry = core::TelemetrySink::open(telemetry_path);
    cfg.telemetry = telemetry.get();
  }
  std::optional<core::ShardingSimulator> sim;
  if (stream)
    sim.emplace(*source, *strategy, cfg);
  else
    sim.emplace(*history, *strategy, cfg);
  const core::SimulationResult r = sim->run();
  if (telemetry)
    std::printf("telemetry         -> %s (%llu windows)\n",
                telemetry_path.c_str(),
                static_cast<unsigned long long>(
                    telemetry->records_written()));

  std::vector<double> cuts;
  std::vector<double> bals;
  for (const core::WindowSample& w : r.windows) {
    cuts.push_back(w.dynamic_edge_cut);
    bals.push_back(w.dynamic_balance);
  }
  std::printf("method            %s\n", r.strategy_name.c_str());
  std::printf("shards            %u\n", r.k);
  std::printf("windows           %zu\n", r.windows.size());
  std::printf("dyn edge-cut      %s\n",
              metrics::to_string(metrics::summarize(cuts)).c_str());
  std::printf("dyn balance       %s\n",
              metrics::to_string(metrics::summarize(bals)).c_str());
  std::printf("static edge-cut   %.4f\n", r.final_static_edge_cut);
  std::printf("static balance    %.4f\n", r.final_static_balance);
  std::printf("executed cross    %.4f\n", r.executed_cross_shard_fraction);
  std::printf("repartitions      %zu\n", r.repartitions.size());
  std::printf("moves             %llu\n",
              static_cast<unsigned long long>(r.total_moves));
  std::printf("moved state units %llu\n",
              static_cast<unsigned long long>(r.total_moved_state_units));
  std::printf("peak rss mb       %.1f\n",
              static_cast<double>(util::peak_rss_bytes()) /
                  (1024.0 * 1024.0));

  const std::string csv_path = args.get("csv", "");
  if (!csv_path.empty()) {
    core::write_windows_csv_file(csv_path, r);
    std::printf("window samples    -> %s\n", csv_path.c_str());
  }
  const std::string events_path = args.get("events-csv", "");
  if (!events_path.empty()) {
    core::write_repartitions_csv_file(events_path, r);
    std::printf("repartitions      -> %s\n", events_path.c_str());
  }
  return 0;
}

int cmd_partition(const util::ArgParser& args) {
  const workload::History history = load_history(args);
  const auto k = static_cast<std::uint32_t>(args.get_uint("shards", 2));
  const std::string only = args.get("method", "");

  // Build the final cumulative graph (§II-B).
  graph::GraphBuilder builder;
  for (const eth::Block& b : history.chain.blocks())
    for (const eth::Transaction& tx : b.transactions)
      for (const eth::Call& c : tx.calls) {
        builder.ensure_vertices(std::max(c.from, c.to) + 1, 1);
        builder.add_edge(c.from, c.to, 1);
      }
  const graph::Graph g = builder.build_undirected();
  std::printf("graph: %llu vertices, %llu edges\n",
              static_cast<unsigned long long>(g.num_vertices()),
              static_cast<unsigned long long>(g.num_edges()));

  // --threads feeds the mt-MLKP phases; the other one-shot partitioners
  // are serial and ignore it.
  partition::MlkpConfig mlkp_cfg;
  mlkp_cfg.threads = static_cast<std::size_t>(args.get_uint("threads", 0));
  if (mlkp_cfg.threads == 0) mlkp_cfg.threads = 1;

  std::vector<std::unique_ptr<partition::Partitioner>> methods;
  methods.push_back(std::make_unique<partition::HashPartitioner>());
  methods.push_back(std::make_unique<partition::KernighanLinPartitioner>());
  methods.push_back(std::make_unique<partition::MlkpPartitioner>(mlkp_cfg));
  methods.push_back(std::make_unique<partition::SpectralPartitioner>());
  methods.push_back(std::make_unique<partition::LdgPartitioner>());
  methods.push_back(std::make_unique<partition::FennelPartitioner>());

  std::printf("%-10s %10s %10s %12s %10s %12s\n", "method", "edgeCut",
              "balance", "dynEdgeCut", "boundary", "commVolume");
  for (const auto& m : methods) {
    if (!only.empty() && m->name() != only) continue;
    const partition::Partition p = m->partition(g, k);
    const partition::QualityReport q = partition::evaluate_partition(g, p);
    std::printf("%-10s %10.4f %10.4f %12.4f %10llu %12llu\n",
                m->name().c_str(), q.edge_cut_fraction, q.balance,
                q.weighted_cut_fraction,
                static_cast<unsigned long long>(q.boundary_vertices),
                static_cast<unsigned long long>(q.communication_volume));
  }
  return 0;
}

int cmd_dot(const util::ArgParser& args) {
  const workload::History history = load_history(args);
  const util::Timestamp from =
      parse_date(args.get("from", "2015-09-01"));
  const util::Timestamp to = parse_date(args.get("to", "2015-10-01"));
  const std::uint64_t max_nodes = args.get_uint("max-nodes", 20);
  ETHSHARD_CHECK_MSG(from < to, "--from must precede --to");

  graph::GraphBuilder builder;
  for (const eth::Block& b : history.chain.blocks()) {
    if (b.timestamp < from || b.timestamp >= to) continue;
    for (const eth::Transaction& tx : b.transactions)
      for (const eth::Call& c : tx.calls) {
        builder.ensure_vertices(std::max(c.from, c.to) + 1, 1);
        builder.add_edge(c.from, c.to, 1);
      }
  }
  const graph::Graph g = builder.build_directed();
  ETHSHARD_CHECK_MSG(g.num_edges() > 0, "no interactions in window");

  graph::Vertex hub = 0;
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v)
    if (g.degree(v) > g.degree(hub)) hub = v;

  std::vector<graph::Vertex> selection = {hub};
  std::vector<bool> chosen(g.num_vertices(), false);
  chosen[hub] = true;
  for (std::size_t i = 0;
       i < selection.size() && selection.size() < max_nodes; ++i)
    for (const graph::Arc& a : g.neighbors(selection[i]))
      if (selection.size() < max_nodes && !chosen[a.to]) {
        chosen[a.to] = true;
        selection.push_back(a.to);
      }

  const graph::Graph sub = g.induced_subgraph(selection);
  graph::DotOptions opts;
  opts.name = "ethshard_subgraph";
  opts.is_contract = [&](graph::Vertex local) {
    const graph::Vertex global = selection[local];
    return history.accounts.contains(global) &&
           history.accounts.info(global).kind ==
               eth::AccountKind::kContract;
  };
  opts.label = [&](graph::Vertex local) {
    return std::to_string(selection[local]);
  };
  graph::write_dot(std::cout, sub, opts);
  return 0;
}

graph::Graph final_graph(const workload::History& history) {
  graph::GraphBuilder builder;
  for (const eth::Block& b : history.chain.blocks())
    for (const eth::Transaction& tx : b.transactions)
      for (const eth::Call& c : tx.calls) {
        builder.ensure_vertices(std::max(c.from, c.to) + 1, 1);
        builder.add_edge(c.from, c.to, 1);
      }
  return builder.build_undirected();
}

int cmd_metis_export(const util::ArgParser& args) {
  const std::string out_path = args.get("out", "");
  ETHSHARD_CHECK_MSG(!out_path.empty(), "metis-export requires --out PATH");
  const workload::History history = load_history(args);
  const graph::Graph g = final_graph(history);
  std::ofstream out(out_path);
  ETHSHARD_CHECK_MSG(out.good(), "cannot open " << out_path);
  partition::write_metis_graph(out, g);
  std::printf("wrote %s: %llu vertices, %llu edges (run: gpmetis %s <k>)\n",
              out_path.c_str(),
              static_cast<unsigned long long>(g.num_vertices()),
              static_cast<unsigned long long>(g.num_edges()),
              out_path.c_str());
  return 0;
}

int cmd_metis_eval(const util::ArgParser& args) {
  const std::string part_path = args.get("part", "");
  ETHSHARD_CHECK_MSG(!part_path.empty(), "metis-eval requires --part PATH");
  const auto k = static_cast<std::uint32_t>(args.get_uint("shards", 2));
  const workload::History history = load_history(args);
  const graph::Graph g = final_graph(history);

  std::ifstream in(part_path);
  ETHSHARD_CHECK_MSG(in.good(), "cannot open " << part_path);
  const partition::Partition p =
      partition::read_metis_partition(in, g.num_vertices(), k);
  std::fputs(partition::to_string(
                 partition::evaluate_partition(g, p)).c_str(),
             stdout);
  return 0;
}

int cmd_compare(const util::ArgParser& args) {
  // --stream: every grid cell opens its own pull-based stream (the
  // factory re-generates or re-reads the trace per cell) instead of all
  // cells sharing one materialized History. Same results.
  const bool stream = args.get_bool("stream", false);
  std::unique_ptr<workload::BlockSourceFactory> sources;
  std::optional<workload::History> history;
  if (stream)
    sources = make_source_factory(args);
  else
    history.emplace(load_history(args));
  core::ExperimentConfig cfg;
  cfg.seed = args.get_uint("seed", 7);
  if (args.get_bool("gas", false)) cfg.load_model = core::LoadModel::kGas;
  // --threads sizes the grid; each cell's partitioner auto-fits whatever
  // hardware budget the grid workers leave (never oversubscribing).
  cfg.threads = static_cast<std::size_t>(args.get_uint("threads", 0));
  cfg.partitioner_threads = 0;
  // Per-cell replay pipelining; run_experiment caps it against the grid
  // workers, and a cell capped to 1 is bit-identical serial replay.
  cfg.replay_threads = replay_threads_arg(args);

  const std::string shards = args.get("shards", "2,4,8");
  cfg.shard_counts.clear();
  std::stringstream ss(shards);
  std::string token;
  while (std::getline(ss, token, ','))
    cfg.shard_counts.push_back(
        static_cast<std::uint32_t>(std::stoul(token)));
  ETHSHARD_CHECK_MSG(!cfg.shard_counts.empty(), "empty --shards list");

  const auto runs = stream ? core::run_experiment(*sources, cfg)
                           : core::run_experiment(*history, cfg);
  std::fputs(core::comparison_table(runs).c_str(), stdout);
  std::printf("\nspeedup = modelled throughput vs an unsharded node "
              "(cross-shard interaction costs 3x).\n");
  return 0;
}

int cmd_import(const util::ArgParser& args) {
  const std::string traces = args.get("traces", "");
  const std::string out = args.get("out", "");
  ETHSHARD_CHECK_MSG(!traces.empty() && !out.empty(),
                     "import requires --traces PATH and --out PATH");
  const workload::ImportResult r =
      workload::import_bigquery_traces_file(traces);
  workload::write_trace_file(out, r.history);
  std::printf("imported %llu calls (%llu rows, %llu skipped) into %llu "
              "blocks / %llu txs, %llu accounts -> %s\n",
              static_cast<unsigned long long>(r.stats.imported_calls),
              static_cast<unsigned long long>(r.stats.rows),
              static_cast<unsigned long long>(r.stats.skipped_rows),
              static_cast<unsigned long long>(r.stats.blocks),
              static_cast<unsigned long long>(r.stats.transactions),
              static_cast<unsigned long long>(r.stats.accounts),
              out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  util::ArgParser args(argc - 2, argv + 2);

  try {
    const std::string metrics_out = args.get("metrics-out", "");
    const std::string trace_out = args.get("trace-out", "");
    if (!metrics_out.empty()) obs::set_enabled(true);
    if (!trace_out.empty()) obs::set_trace_enabled(true);
    // --trace-max-spans caps the span/counter buffers (0 = unlimited);
    // useful to bound a long profiling run's memory, or to force the
    // truncation path when testing it.
    if (const std::uint64_t cap =
            args.get_uint("trace-max-spans",
                          obs::TraceBuffer::kDefaultMaxSpans);
        cap != obs::TraceBuffer::kDefaultMaxSpans)
      obs::TraceBuffer::global().set_max_spans(
          static_cast<std::size_t>(cap));

    // --threads is accepted by every subcommand (commands that have no
    // parallel phase simply ignore it); validate it once, up front.
    const std::uint64_t threads_flag = args.get_uint("threads", 0);
    ETHSHARD_CHECK_MSG(threads_flag <= 1024,
                       "--threads " << threads_flag
                                    << " is not plausible — use 0 for the "
                                       "default (serial partitioner / "
                                       "hardware-sized grid)");
    replay_threads_arg(args);  // validates the count / "auto" up front

    int rc;
    if (command == "generate") {
      rc = cmd_generate(args);
    } else if (command == "stats") {
      rc = cmd_stats(args);
    } else if (command == "simulate") {
      rc = cmd_simulate(args);
    } else if (command == "partition") {
      rc = cmd_partition(args);
    } else if (command == "dot") {
      rc = cmd_dot(args);
    } else if (command == "import") {
      rc = cmd_import(args);
    } else if (command == "metis-export") {
      rc = cmd_metis_export(args);
    } else if (command == "metis-eval") {
      rc = cmd_metis_eval(args);
    } else if (command == "compare") {
      rc = cmd_compare(args);
    } else {
      return usage();
    }
    if (!metrics_out.empty()) {
      obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
      // Surface span-buffer overflow: silence here would make a truncated
      // trace look complete.
      const std::uint64_t dropped = obs::TraceBuffer::global().dropped();
      if (dropped > 0) snap.counters["trace/dropped_spans"] = dropped;
      const bool csv = metrics_out.size() >= 4 &&
                       metrics_out.compare(metrics_out.size() - 4, 4,
                                           ".csv") == 0;
      if (csv)
        obs::write_metrics_csv_file(metrics_out, snap);
      else
        obs::write_metrics_json_file(metrics_out, snap);
      std::fprintf(stderr, "[ethshard] metrics -> %s\n",
                   metrics_out.c_str());
    }
    if (!trace_out.empty()) {
      const obs::TraceSnapshot trace =
          obs::TraceBuffer::global().trace_snapshot();
      obs::write_trace_json_file(trace_out, trace);
      std::fprintf(stderr, "[ethshard] trace -> %s\n", trace_out.c_str());
      if (trace.dropped_spans > 0 || trace.dropped_counters > 0)
        std::fprintf(stderr,
                     "[ethshard] warning: trace truncated — %llu spans / "
                     "%llu counter samples dropped (raise "
                     "--trace-max-spans)\n",
                     static_cast<unsigned long long>(trace.dropped_spans),
                     static_cast<unsigned long long>(
                         trace.dropped_counters));
    }
    // --max-rss-mb: a memory budget over the whole command. Checked
    // against the kernel's process high-water mark, so nothing the run
    // did can hide from it; a breach is an error exit, which is what
    // lets CI assert "streaming stays under X where materialized
    // doesn't". --verdict-out additionally serializes the check as a
    // scenario-report JSON (src/scenario/report.hpp, kind "rss_budget"),
    // so scripts parse a machine verdict instead of grepping stderr.
    const std::uint64_t max_rss_mb = args.get_uint("max-rss-mb", 0);
    const std::string verdict_out = args.get("verdict-out", "");
    if (max_rss_mb > 0 || !verdict_out.empty()) {
      const double peak_mb =
          static_cast<double>(util::peak_rss_bytes()) / (1024.0 * 1024.0);
      const bool within =
          max_rss_mb == 0 || peak_mb <= static_cast<double>(max_rss_mb);
      if (!verdict_out.empty()) {
        scenario::Report report;
        scenario::ScenarioReport& sc = report.scenarios.emplace_back();
        sc.name = "cli-" + command;
        sc.description = "ethshard " + command + " resource verdict";
        scenario::StrategyRunReport& run = sc.runs.emplace_back();
        run.strategy = command;
        run.peak_rss_mb = peak_mb;
        scenario::InvariantVerdict v;
        v.kind = "rss_budget";
        v.name = max_rss_mb > 0
                     ? "peak_rss_mb <= " + std::to_string(max_rss_mb)
                     : "peak_rss_mb (unbounded)";
        v.observed = peak_mb;
        v.threshold = static_cast<double>(max_rss_mb);
        v.pass = within;
        if (!within)
          v.detail = "peak rss exceeded the --max-rss-mb budget";
        run.invariants.push_back(v);
        std::ofstream vout(verdict_out);
        ETHSHARD_CHECK_MSG(vout.good(), "cannot open --verdict-out file "
                                            << verdict_out);
        scenario::write_report_json(report, vout);
        std::fprintf(stderr, "[ethshard] verdict -> %s\n",
                     verdict_out.c_str());
      }
      if (max_rss_mb > 0) {
        if (!within) {
          std::fprintf(stderr,
                       "[ethshard] error: peak rss %.1f MiB exceeded "
                       "--max-rss-mb %llu\n",
                       peak_mb, static_cast<unsigned long long>(max_rss_mb));
          return 1;
        }
        std::fprintf(
            stderr,
            "[ethshard] peak rss %.1f MiB within --max-rss-mb %llu\n",
            peak_mb, static_cast<unsigned long long>(max_rss_mb));
      }
    }
    for (const std::string& flag : args.unused())
      std::fprintf(stderr, "[ethshard] warning: unused flag --%s\n",
                   flag.c_str());
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[ethshard] error: %s\n", e.what());
    return 1;
  }
}
