// scenario_runner — replays declarative stress scenarios (scenarios/
// *.scn) against the registered strategy families and emits the
// machine-checked invariant verdict as schema-versioned JSON
// (src/scenario/report.hpp).
//
// Usage:
//   scenario_runner [options] <file-or-dir>...
//
//   <file-or-dir>        a .scn file, or a directory scanned for *.scn
//                        (sorted by name)
//   --out PATH           write the JSON report to PATH (default stdout)
//   --override K=V       apply a scenario setting to every scenario,
//                        after its file parses (repeatable; same keys as
//                        the file grammar — tighten thresholds, swap the
//                        strategy list, shrink scale)
//   --scale-mult X       multiply every scenario's generator scale
//                        (drift invariants are skipped when X != 1)
//   --threads N          partitioner threads (default 1; bit-identical
//                        results either way)
//   --update-golden      rewrite drift goldens from this run instead of
//                        checking them
//   --list               parse and summarize the scenarios, run nothing
//
// Exit codes: 0 all invariants pass, 1 at least one violation, 2 usage
// or configuration error (unparsable scenario, unknown strategy,
// missing golden).
#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "util/check.hpp"

namespace {

namespace fs = std::filesystem;
using namespace ethshard;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out PATH] [--override K=V]... [--scale-mult X]\n"
               "          [--threads N] [--update-golden] [--list]\n"
               "          <scenario-file-or-dir>...\n",
               argv0);
  return 2;
}

std::vector<std::string> collect_scenario_files(
    const std::vector<std::string>& inputs) {
  std::vector<std::string> files;
  for (const auto& input : inputs) {
    ETHSHARD_CHECK_MSG(fs::exists(input), "no such file or directory: "
                                              << input);
    if (fs::is_directory(input)) {
      std::vector<std::string> dir_files;
      for (const auto& entry : fs::directory_iterator(input))
        if (entry.is_regular_file() && entry.path().extension() == ".scn")
          dir_files.push_back(entry.path().string());
      std::sort(dir_files.begin(), dir_files.end());
      ETHSHARD_CHECK_MSG(!dir_files.empty(),
                         "directory has no .scn files: " << input);
      files.insert(files.end(), dir_files.begin(), dir_files.end());
    } else {
      files.push_back(input);
    }
  }
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  scenario::RunnerOptions options;
  bool list_only = false;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next_value("--out");
    } else if (arg == "--override") {
      const std::string kv = next_value("--override");
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "--override wants K=V, got '%s'\n", kv.c_str());
        return 2;
      }
      options.overrides.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    } else if (arg == "--scale-mult") {
      options.scale_mult = std::stod(next_value("--scale-mult"));
      if (options.scale_mult <= 0) {
        std::fprintf(stderr, "--scale-mult must be positive\n");
        return 2;
      }
    } else if (arg == "--threads") {
      options.default_threads =
          static_cast<std::size_t>(std::stoul(next_value("--threads")));
    } else if (arg == "--update-golden") {
      options.update_golden = true;
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage(argv[0]);

  try {
    std::vector<scenario::Scenario> scenarios;
    for (const auto& file : collect_scenario_files(inputs))
      scenarios.push_back(scenario::load_scenario_file(file));

    if (list_only) {
      for (const auto& s : scenarios) {
        std::printf("%-24s preset=%s scale=%g shards=%u strategies=%zu%s\n",
                    s.name.c_str(),
                    workload::preset_name(s.preset).c_str(), s.scale,
                    s.shards, s.strategies.size(),
                    s.description.empty()
                        ? ""
                        : ("  # " + s.description).c_str());
      }
      return 0;
    }

    const scenario::Report report =
        scenario::run_matrix(scenarios, options);

    if (out_path.empty()) {
      scenario::write_report_json(report, std::cout);
    } else {
      std::ofstream out(out_path);
      ETHSHARD_CHECK_MSG(out.good(), "cannot open --out file " << out_path);
      scenario::write_report_json(report, out);
    }

    // One human-readable line per run on stderr so CI logs show where a
    // red verdict came from without opening the artifact.
    for (const auto& s : report.scenarios)
      for (const auto& r : s.runs) {
        std::fprintf(stderr, "[%s] %s %s (%llu windows, %.0f ms)\n",
                     r.pass() ? "PASS" : "FAIL", s.name.c_str(),
                     r.strategy.c_str(),
                     static_cast<unsigned long long>(r.windows), r.wall_ms);
        for (const auto& v : r.invariants)
          if (!v.pass)
            std::fprintf(stderr, "       %s: %s\n", v.kind.c_str(),
                         v.detail.c_str());
      }
    return report.pass() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scenario_runner: %s\n", e.what());
    return 2;
  }
}
