// perf_snapshot — tagged performance benches with a schema-versioned
// JSON snapshot, plus the comparator that guards against regressions.
//
//   perf_snapshot run   [--out PATH] [--reps N] [--threads N]
//   perf_snapshot check --snapshot PATH --baseline PATH [--strict]
//
// `run` executes every tagged bench `reps` times and writes
// BENCH_<stamp>.json (schema below). `check` validates a snapshot's
// schema and — with --strict — fails when any baseline entry's wall time
// regressed beyond its per-entry tolerance factor. Without --strict it
// is a smoke check: schema + every baseline bench present (CI runs this
// mode, where shared-runner timing noise would make hard thresholds
// flaky; --strict is for dedicated hardware).
//
// Snapshot schema (v1):
//   {"schema_version": 1, "stamp": "...", "git_sha": "...",
//    "hostname": "...", "threads": N, "requested_threads": N,
//    "replay_threads": N, "scale": F, "seed": N, "entries": [
//      {"name": "...", "reps": N, "threads": N, "requested_threads": N,
//       "wall_ms": F, "p50_ms": F, "p99_ms": F, "peak_rss_mb": F}, ...]}
// The per-entry "threads" records the *effective* thread knob that bench
// ran with (partitioner threads for mlkp_*, replay threads for
// simulate_*) and "requested_threads" the pre-clamp ask — they differ
// only when --threads exceeded the host's hardware count (a stderr
// warning flags the clamp), and requested_threads is 0 on the entries
// that use replay_threads=auto. "peak_rss_mb" is the resident
// high-water mark over that bench's reps (util::reset_peak_rss before
// each bench; 0 when the platform cannot measure it). The checker's
// field scanner ignores keys it does not know, so baselines without
// them stay valid.
// Baseline schema (v1): entries carry "name", "wall_ms" and an optional
// "tolerance" ratio (default 2.5: fail when snapshot wall_ms exceeds
// 2.5x the baseline).
//
// Scale/seed/reps honour ETHSHARD_SCALE / ETHSHARD_SEED /
// ETHSHARD_PERF_REPS, matching the bench harnesses.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "graph/generators.hpp"
#include "obs/histogram.hpp"
#include "partition/mlkp.hpp"
#include "partition/parallel_match.hpp"
#include "util/args.hpp"
#include "util/check.hpp"
#include "util/mem.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace ethshard;

// ------------------------------------------------------------------ run

struct BenchResult {
  std::string name;
  int reps = 0;
  std::size_t threads = 1;  // effective thread knob the bench ran with
  /// The thread count that was *asked for* (--threads, or the bench's
  /// pinned value) before any hardware clamp. Differs from `threads`
  /// only when the host has fewer cores than requested — recording both
  /// keeps mt-vs-serial comparisons honest on small hosts.
  std::size_t requested_threads = 1;
  double wall_ms = 0;       // median of the reps
  double p50_ms = 0;
  double p99_ms = 0;
  double peak_rss_mb = 0;   // resident high-water mark over the reps
};

double quantile_of(std::vector<double> sorted, double q) {
  ETHSHARD_CHECK(!sorted.empty());
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

/// `requested` is the pre-clamp thread ask; pass the same value as
/// `threads` for benches whose knob is pinned rather than clamped.
BenchResult run_bench(const std::string& name, int reps,
                      std::size_t requested, std::size_t threads,
                      const std::function<void()>& body) {
  // Bracket this bench's memory: the high-water mark read afterwards
  // covers only these reps, not whatever a previous bench allocated.
  util::reset_peak_rss();
  std::vector<double> samples;
  samples.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    body();
    samples.push_back(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count());
  }
  BenchResult res;
  res.name = name;
  res.reps = reps;
  res.threads = threads;
  res.requested_threads = requested;
  res.wall_ms = quantile_of(samples, 0.5);
  res.p50_ms = res.wall_ms;
  res.p99_ms = quantile_of(samples, 0.99);
  res.peak_rss_mb =
      static_cast<double>(util::peak_rss_bytes()) / (1024.0 * 1024.0);
  std::fprintf(stderr,
               "[perf] %-28s %4d reps %2zu thr  p50 %10.3f ms  p99 %10.3f ms"
               "  peak %7.1f MiB\n",
               name.c_str(), reps, threads, res.p50_ms, res.p99_ms,
               res.peak_rss_mb);
  return res;
}

std::string utc_stamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y%m%dT%H%M%SZ", &tm);
  return buf;
}

// Provenance for trajectory tooling: which commit and machine produced
// the snapshot. ETHSHARD_GIT_SHA overrides (CI exports it from the
// checkout); otherwise ask git, and degrade to "unknown" outside a work
// tree — a snapshot must never fail over missing provenance.
std::string git_sha() {
  if (const char* sha = std::getenv("ETHSHARD_GIT_SHA")) return sha;
  std::string sha = "unknown";
  if (FILE* pipe = popen("git rev-parse --short=12 HEAD 2>/dev/null", "r")) {
    char buf[64] = {0};
    if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
      std::string line(buf);
      while (!line.empty() &&
             (line.back() == '\n' || line.back() == '\r'))
        line.pop_back();
      if (!line.empty()) sha = line;
    }
    pclose(pipe);
  }
  return sha;
}

std::string host_name() {
  char buf[256] = {0};
  if (gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
  return buf[0] != '\0' ? buf : "unknown";
}

int reps_from_env(int fallback) {
  if (const char* s = std::getenv("ETHSHARD_PERF_REPS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

int cmd_run(const util::ArgParser& args) {
  const double scale = bench::scale_from_env();
  const std::uint64_t seed = bench::seed_from_env();
  const int reps = reps_from_env(static_cast<int>(args.get_uint("reps", 3)));
  const std::size_t requested_threads =
      static_cast<std::size_t>(args.get_uint("threads", 4));
  const std::size_t threads =
      std::min(requested_threads, util::default_thread_count());
  if (threads != requested_threads)
    std::fprintf(stderr,
                 "[perf] warning: --threads %zu clamped to %zu (host has "
                 "%zu hardware threads); mt entries will record both "
                 "requested and effective counts\n",
                 requested_threads, threads, util::default_thread_count());

  // Graph size tracks the scale knob so smoke runs stay sub-second. The
  // _large variants use a 10x graph: at the default scale the base graph
  // coarsens away in one or two levels, which under-exercises the
  // parallel coarsen/refine ladders that dominate real partitioner runs.
  const auto n = static_cast<std::uint64_t>(std::max(
      1000.0, scale * 2e6));
  const auto n_large = static_cast<std::uint64_t>(std::max(
      20000.0, scale * 2e7));
  util::Rng rng(seed);
  const graph::Graph ba = graph::make_barabasi_albert(n, 4, rng);
  util::Rng rng_large(seed + 1);
  const graph::Graph ba_large =
      graph::make_barabasi_albert(n_large, 4, rng_large);
  const workload::History history = bench::make_history(scale, seed);
  // Auto replay (replay_threads = 0): on hosts with >= 2 hardware
  // threads it starts the pipeline at this width and runs the measured
  // probe, falling back to serial mid-run when the pipeline cannot win;
  // on single-core hosts it resolves straight to serial (width 1). Auto
  // entries record requested_threads = 0 (the auto sentinel) and
  // threads = the resolved starting width.
  const std::size_t auto_replay =
      util::default_thread_count() < 2 ? 1 : util::default_thread_count();

  std::vector<BenchResult> results;
  results.push_back(run_bench("mlkp_partition_serial", reps, 1, 1, [&] {
    partition::MlkpConfig cfg;
    cfg.seed = seed;
    cfg.threads = 1;
    partition::MlkpPartitioner(cfg).partition(ba, 8);
  }));
  results.push_back(
      run_bench("mlkp_partition_mt", reps, requested_threads, threads, [&] {
        partition::MlkpConfig cfg;
        cfg.seed = seed;
        cfg.threads = threads;
        partition::MlkpPartitioner(cfg).partition(ba, 8);
      }));
  results.push_back(
      run_bench("mlkp_partition_serial_large", reps, 1, 1, [&] {
        partition::MlkpConfig cfg;
        cfg.seed = seed;
        cfg.threads = 1;
        partition::MlkpPartitioner(cfg).partition(ba_large, 8);
      }));
  results.push_back(run_bench("mlkp_partition_mt_large", reps,
                              requested_threads, threads, [&] {
                                partition::MlkpConfig cfg;
                                cfg.seed = seed;
                                cfg.threads = threads;
                                partition::MlkpPartitioner(cfg).partition(
                                    ba_large, 8);
                              }));
  results.push_back(
      run_bench("parallel_matching_mt", reps, requested_threads, threads, [&] {
        partition::parallel_matching(ba, partition::MatchingScheme::kHeavyEdge,
                                     seed, threads);
      }));
  results.push_back(run_bench("simulate_hashing", reps, 0, auto_replay, [&] {
    bench::simulate(history, core::Method::kHashing, 4, seed);
  }));
  // The same cell with the replay mode pinned both ways: serial
  // (replay_threads = 1) is the baseline the pipelined and auto entries
  // are judged against, and the pinned pipeline (replay_threads = 2)
  // locks in the pipelined-replay win even if the simulator's default
  // ever changes, isolated from the auto-detection path.
  results.push_back(run_bench("simulate_hashing_serial", reps, 1, 1, [&] {
    bench::simulate(history, core::Method::kHashing, 4, seed, 1);
  }));
  results.push_back(run_bench("simulate_hashing_pipelined", reps, 2, 2, [&] {
    bench::simulate(history, core::Method::kHashing, 4, seed, 2);
  }));
  results.push_back(run_bench("simulate_rmetis", reps, 0, auto_replay, [&] {
    bench::simulate(history, core::Method::kRMetis, 4, seed);
  }));
  // Migration-heavy cell: KL (the balanced-label-propagation scheme) at
  // k = 8 moves vertices between shards every period, stressing the
  // incremental static-cut maintenance and window-graph construction.
  results.push_back(run_bench("simulate_blp_k8", reps, 0, auto_replay, [&] {
    bench::simulate(history, core::Method::kKl, 8, seed);
  }));
  results.push_back(run_bench("simulate_blp_k8_serial", reps, 1, 1, [&] {
    bench::simulate(history, core::Method::kKl, 8, seed, 1);
  }));
  results.push_back(run_bench("simulate_blp_k8_pipelined", reps, 2, 2, [&] {
    bench::simulate(history, core::Method::kKl, 8, seed, 2);
  }));
  // Many-call transaction shape: attack spam fanning out to ~200 dummy
  // accounts per transaction, replayed serially (replay_threads = 1) to
  // exercise the per-transaction involved-set dedup on wide call lists.
  workload::GeneratorConfig manycall_cfg;
  manycall_cfg.scale = scale / 4;
  manycall_cfg.seed = seed;
  manycall_cfg.attack_dummies_per_tx = 200;
  const workload::History manycall_history =
      workload::EthereumHistoryGenerator(manycall_cfg).generate();
  results.push_back(run_bench("simulate_manycall", reps, 1, 1, [&] {
    bench::simulate(manycall_history, core::Method::kHashing, 4, seed, 1);
  }));
  // Long-gap trace: the same history with an 80-year quiet period spliced
  // into the middle — ~175k empty 4-hour windows that the simulator must
  // not pay for one at a time.
  const auto& blocks = history.chain.blocks();
  const util::Timestamp mid =
      blocks.empty() ? 0
                     : (blocks.front().timestamp + blocks.back().timestamp) / 2;
  const workload::History gap_history =
      workload::with_traffic_gap(history, mid, 80 * 365 * util::kDay);
  results.push_back(run_bench("simulate_longgap", reps, 0, auto_replay, [&] {
    bench::simulate(gap_history, core::Method::kHashing, 4, seed);
  }));
  // Streaming cell: the same hashing workload, but the simulator pulls
  // blocks straight off a GeneratedSource instead of a materialized
  // History — one pass that pays generation inline (so wall time is
  // roughly simulate_hashing plus the generate() cost the other cells
  // pay outside their timed region), with the peak_rss_mb column
  // showing the whole-history copy it avoids.
  results.push_back(run_bench("simulate_streaming", reps, 0, auto_replay, [&] {
    workload::GeneratorConfig cfg;
    cfg.scale = scale;
    cfg.seed = seed;
    workload::GeneratedSource source(cfg);
    const auto strategy = core::make_strategy(core::Method::kHashing, seed);
    core::SimulatorConfig sim_cfg;
    sim_cfg.k = 4;
    core::ShardingSimulator sim(source, *strategy, sim_cfg);
    sim.run();
  }));
  // Pure generation at 10x scale, drained block-by-block without ever
  // holding more than one block: bounds the generator's own footprint
  // (registry + mempool) separately from any simulator state.
  results.push_back(run_bench("generate_streaming_large", reps, 1, 1, [&] {
    workload::GeneratorConfig cfg;
    cfg.scale = scale * 10;
    cfg.seed = seed;
    workload::GeneratedSource source(cfg);
    eth::Block block;
    std::uint64_t txs = 0;
    while (source.next(block)) txs += block.transactions.size();
    ETHSHARD_CHECK(txs > 0);
  }));
  results.push_back(run_bench("obs_histogram_record", reps, 1, 1, [&] {
    obs::Histogram h;
    for (int i = 0; i < 1000000; ++i)
      h.record(static_cast<double>((i % 997) + 1));
    ETHSHARD_CHECK(h.count() == 1000000u);
  }));

  const std::string stamp = utc_stamp();
  const std::string out_path =
      args.get("out", "BENCH_" + stamp + ".json");
  std::ofstream out(out_path);
  ETHSHARD_CHECK_MSG(out.good(), "cannot open " << out_path);
  out << "{\n"
      << "  \"schema_version\": 1,\n"
      << "  \"stamp\": \"" << stamp << "\",\n"
      << "  \"git_sha\": \"" << git_sha() << "\",\n"
      << "  \"hostname\": \"" << host_name() << "\",\n"
      << "  \"threads\": " << threads << ",\n"
      << "  \"requested_threads\": " << requested_threads << ",\n"
      << "  \"replay_threads\": " << auto_replay << ",\n"
      << "  \"scale\": " << fmt(scale) << ",\n"
      << "  \"seed\": " << seed << ",\n"
      << "  \"entries\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", \"reps\": " << r.reps
        << ", \"threads\": " << r.threads
        << ", \"requested_threads\": " << r.requested_threads
        << ", \"wall_ms\": " << fmt(r.wall_ms)
        << ", \"p50_ms\": " << fmt(r.p50_ms)
        << ", \"p99_ms\": " << fmt(r.p99_ms)
        << ", \"peak_rss_mb\": " << fmt(r.peak_rss_mb) << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  ETHSHARD_CHECK_MSG(out.good(), "write failed: " << out_path);
  std::printf("snapshot -> %s (%zu benches, scale %g, %d reps)\n",
              out_path.c_str(), results.size(), scale, reps);
  return 0;
}

// ---------------------------------------------------------------- check
//
// Minimal scanner for the two schemas above — NOT a general JSON parser.
// Both files are machine-written by this tool (or hand-maintained as the
// baseline), so strict structure is a feature: anything surprising fails.

struct Entry {
  std::string name;
  double wall_ms = -1;
  double p50_ms = -1;
  double p99_ms = -1;
  double tolerance = -1;  // baseline only; -1 = absent
};

struct Snapshot {
  int schema_version = -1;
  std::vector<Entry> entries;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  ETHSHARD_CHECK_MSG(in.good(), "cannot open " << path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Value text following `"key":` inside `obj`, or "" when absent.
std::string field_text(const std::string& obj, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = obj.find(needle);
  if (at == std::string::npos) return "";
  std::size_t i = at + needle.size();
  while (i < obj.size() && obj[i] == ' ') ++i;
  std::size_t end = i;
  if (end < obj.size() && obj[end] == '"') {  // string value
    end = obj.find('"', end + 1);
    ETHSHARD_CHECK_MSG(end != std::string::npos, "unterminated string");
    return obj.substr(i + 1, end - i - 1);
  }
  while (end < obj.size() && obj[end] != ',' && obj[end] != '}' &&
         obj[end] != '\n' && obj[end] != ']')
    ++end;
  std::string text = obj.substr(i, end - i);
  while (!text.empty() && text.back() == ' ') text.pop_back();
  return text;
}

Snapshot parse_snapshot(const std::string& path) {
  const std::string text = read_file(path);
  Snapshot snap;
  const std::string version = field_text(text, "schema_version");
  ETHSHARD_CHECK_MSG(!version.empty(),
                     path << ": missing schema_version");
  snap.schema_version = std::atoi(version.c_str());

  const std::size_t entries_at = text.find("\"entries\":");
  ETHSHARD_CHECK_MSG(entries_at != std::string::npos,
                     path << ": missing entries array");
  std::size_t i = text.find('[', entries_at);
  ETHSHARD_CHECK_MSG(i != std::string::npos, path << ": malformed entries");
  const std::size_t close = text.find(']', i);
  ETHSHARD_CHECK_MSG(close != std::string::npos,
                     path << ": unterminated entries");
  while (true) {
    const std::size_t open = text.find('{', i);
    if (open == std::string::npos || open > close) break;
    const std::size_t end = text.find('}', open);
    ETHSHARD_CHECK_MSG(end != std::string::npos && end < close,
                       path << ": unterminated entry object");
    const std::string obj = text.substr(open, end - open + 1);
    Entry e;
    e.name = field_text(obj, "name");
    ETHSHARD_CHECK_MSG(!e.name.empty(), path << ": entry without name");
    const std::string wall = field_text(obj, "wall_ms");
    ETHSHARD_CHECK_MSG(!wall.empty(),
                       path << ": entry '" << e.name << "' lacks wall_ms");
    e.wall_ms = std::atof(wall.c_str());
    const std::string p50 = field_text(obj, "p50_ms");
    if (!p50.empty()) e.p50_ms = std::atof(p50.c_str());
    const std::string p99 = field_text(obj, "p99_ms");
    if (!p99.empty()) e.p99_ms = std::atof(p99.c_str());
    const std::string tol = field_text(obj, "tolerance");
    if (!tol.empty()) e.tolerance = std::atof(tol.c_str());
    snap.entries.push_back(std::move(e));
    i = end + 1;
  }
  return snap;
}

int cmd_check(const util::ArgParser& args) {
  const std::string snap_path = args.get("snapshot", "");
  const std::string base_path = args.get("baseline", "");
  ETHSHARD_CHECK_MSG(!snap_path.empty() && !base_path.empty(),
                     "check requires --snapshot PATH and --baseline PATH");
  const bool strict = args.get_bool("strict", false);

  const Snapshot snap = parse_snapshot(snap_path);
  const Snapshot base = parse_snapshot(base_path);
  ETHSHARD_CHECK_MSG(snap.schema_version == 1,
                     "snapshot schema_version " << snap.schema_version
                                                << " unsupported");
  ETHSHARD_CHECK_MSG(base.schema_version == 1,
                     "baseline schema_version " << base.schema_version
                                                << " unsupported");
  ETHSHARD_CHECK_MSG(!snap.entries.empty(), "snapshot has no entries");

  // Snapshot-side schema: every entry carries sane timings.
  for (const Entry& e : snap.entries) {
    ETHSHARD_CHECK_MSG(e.wall_ms >= 0 && e.p50_ms >= 0 && e.p99_ms >= 0,
                       "snapshot entry '" << e.name
                                          << "' has malformed timings");
    ETHSHARD_CHECK_MSG(e.p99_ms + 1e-9 >= e.p50_ms,
                       "snapshot entry '" << e.name << "': p99 < p50");
  }

  int failures = 0;
  for (const Entry& b : base.entries) {
    const auto it = std::find_if(
        snap.entries.begin(), snap.entries.end(),
        [&](const Entry& e) { return e.name == b.name; });
    if (it == snap.entries.end()) {
      std::fprintf(stderr, "[perf] FAIL %-24s missing from snapshot\n",
                   b.name.c_str());
      ++failures;
      continue;
    }
    const double tolerance = b.tolerance > 0 ? b.tolerance : 2.5;
    const double limit = b.wall_ms * tolerance;
    const double ratio =
        b.wall_ms > 0 ? it->wall_ms / b.wall_ms : 0.0;
    const bool regressed = strict && it->wall_ms > limit;
    std::printf("[perf] %s %-24s %10.3f ms vs baseline %10.3f ms "
                "(%.2fx, limit %.1fx%s)\n",
                regressed ? "FAIL" : "ok  ", b.name.c_str(), it->wall_ms,
                b.wall_ms, ratio, tolerance,
                strict ? "" : ", advisory");
    if (regressed) ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr, "[perf] %d check(s) failed\n", failures);
    return 1;
  }
  std::printf("[perf] %s passed (%zu baseline benches)\n",
              strict ? "strict check" : "smoke check", base.entries.size());
  return 0;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: perf_snapshot run   [--out PATH] [--reps N] [--threads N]\n"
      "       perf_snapshot check --snapshot PATH --baseline PATH"
      " [--strict]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string command = argc >= 2 ? argv[1] : "run";
  const int skip = argc >= 2 && argv[1][0] != '-' ? 2 : 1;
  util::ArgParser args(argc - skip, argv + skip);
  try {
    if (command == "run") return cmd_run(args);
    if (command == "check") return cmd_check(args);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[perf] error: %s\n", e.what());
    return 1;
  }
}
