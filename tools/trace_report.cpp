// trace_report — pipeline efficiency report from a --trace-out file.
//
//   ethshard simulate --replay-threads 2 --trace-out run.trace.json ...
//   trace_report --trace run.trace.json --out report.json
//
// Ingests the Chrome trace-event JSON the CLI writes and emits a
// schema-versioned report (src/obs/trace_analysis.hpp): overlap fraction
// between Stage A aggregation and Stage B apply/flush, per-stage
// utilization, stall-time attribution (backpressure vs prefetch), a
// critical-path decomposition, and a serial-vs-pipelined verdict. A
// one-line human summary goes to stderr; the JSON goes to --out (or
// stdout), so CI can archive and schema-check it.
//
// Exit codes: 0 report written, 1 malformed/unreadable trace, 2 usage.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/trace_analysis.hpp"
#include "util/args.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: trace_report --trace PATH [--out PATH]\n"
               "\n"
               "  --trace PATH   Chrome trace-event JSON written by\n"
               "                 ethshard --trace-out\n"
               "  --out PATH     write the report JSON here instead of\n"
               "                 stdout\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ethshard;
  util::ArgParser args(argc - 1, argv + 1);
  const std::string trace_path = args.get("trace", "");
  const std::string out_path = args.get("out", "");
  if (trace_path.empty()) return usage();

  try {
    std::ifstream in(trace_path);
    if (!in.good()) {
      std::fprintf(stderr, "[trace_report] cannot open %s\n",
                   trace_path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    const obs::ParsedTrace trace = obs::parse_chrome_trace(buffer.str());
    const obs::PipelineReport report = obs::analyze_pipeline_trace(trace);

    if (out_path.empty()) {
      obs::write_pipeline_report_json(std::cout, report);
    } else {
      std::ofstream out(out_path);
      if (!out.good()) {
        std::fprintf(stderr, "[trace_report] cannot open %s\n",
                     out_path.c_str());
        return 1;
      }
      obs::write_pipeline_report_json(out, report);
      std::fprintf(stderr, "[trace_report] report -> %s\n",
                   out_path.c_str());
    }

    std::fprintf(stderr,
                 "[trace_report] %llu events, wall %.1f ms, overlap %.2f, "
                 "stalls bp %.1f ms / pf %.1f ms, %s, verdict: %s "
                 "(speedup %.2f)%s\n",
                 static_cast<unsigned long long>(trace.events.size()),
                 report.wall_ms, report.overlap_fraction,
                 report.backpressure_ms, report.prefetch_ms,
                 report.bottleneck.c_str(), report.recommendation.c_str(),
                 report.speedup,
                 report.truncated ? " [trace truncated]" : "");
    for (const std::string& flag : args.unused())
      std::fprintf(stderr, "[trace_report] warning: unused flag --%s\n",
                   flag.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[trace_report] error: %s\n", e.what());
    return 1;
  }
}
