#!/usr/bin/env bash
# Tier-1 verify under sanitizers.
#
#   tools/ci_sanitize.sh                  # asan suite (the historical default)
#   tools/ci_sanitize.sh --suite asan     # ASan+UBSan build, full test suite
#   tools/ci_sanitize.sh --suite tsan     # TSan build, parallel partition +
#                                         # util + pipelined-replay suites
#                                         # (the multithreaded surface worth
#                                         # racing)
#   tools/ci_sanitize.sh --suite all      # both, asan first
#
# Extra arguments after the suite selector are forwarded to ctest.
set -euo pipefail

cd "$(dirname "$0")/.."

suite="asan"
if [[ "${1:-}" == "--suite" ]]; then
  suite="${2:?--suite needs an argument (asan|tsan|all)}"
  shift 2
fi

run_asan() {
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$(nproc)"

  # abort_on_error makes ASan failures kill the test immediately so ctest
  # reports them instead of a confusing pass-with-log.
  ASAN_OPTIONS=abort_on_error=1:detect_leaks=0 \
  UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --test-dir build-asan -j "$(nproc)" --output-on-failure "$@"
}

run_tsan() {
  cmake --preset tsan
  # Only the binaries with real multithreaded surface — building the whole
  # tree (benches, examples) under TSan buys nothing. test_pipelined_replay
  # covers the replay pipeline's producer/consumer handoff, the first
  # cross-thread traffic on the simulator's hot path.
  cmake --build build-tsan -j "$(nproc)" \
    --target test_parallel_partition test_util test_pipelined_replay
  # The tsan preset pins ETHSHARD_DIFF_SCALE=0.0002 as a cache variable
  # (tests/CMakeLists.txt injects it into the tests' environment): smaller
  # histories, same strategy × load-model × thread matrix — TSan multiplies
  # runtime ~10x and the differential coverage is per-window.
  TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1 \
    ctest --preset tsan "$@"
}

case "$suite" in
  asan) run_asan "$@" ;;
  tsan) run_tsan "$@" ;;
  all)
    run_asan "$@"
    run_tsan "$@"
    ;;
  *)
    echo "unknown suite '$suite' (expected asan, tsan or all)" >&2
    exit 2
    ;;
esac
