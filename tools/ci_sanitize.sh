#!/usr/bin/env bash
# Tier-1 verify under AddressSanitizer + UndefinedBehaviorSanitizer.
#
# Builds the asan-ubsan CMake preset and runs the full test suite with
# sanitizer halts fatal (the build already passes -fno-sanitize-recover).
# Usage: tools/ci_sanitize.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"

# abort_on_error makes ASan failures kill the test immediately so ctest
# reports them instead of a confusing pass-with-log.
export ASAN_OPTIONS=abort_on_error=1:detect_leaks=0
export UBSAN_OPTIONS=print_stacktrace=1

ctest --test-dir build-asan -j "$(nproc)" --output-on-failure "$@"
