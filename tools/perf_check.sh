#!/usr/bin/env sh
# Run the tagged perf benches and compare against the committed baseline.
#
#   tools/perf_check.sh <build-dir> [--strict]
#
# Without --strict this is a smoke check (schema + every baseline bench
# present; timings reported but advisory) — the mode CI runs, where
# shared-runner noise makes hard thresholds flaky. With --strict any
# bench exceeding its baseline wall_ms by more than its per-entry
# tolerance factor fails the script; use that on dedicated hardware.
#
# Honours ETHSHARD_SCALE / ETHSHARD_SEED / ETHSHARD_PERF_REPS.
set -eu

BUILD=${1:?usage: tools/perf_check.sh <build-dir> [--strict]}
shift

ROOT=$(cd "$(dirname "$0")/.." && pwd)
SNAPSHOT=$(mktemp "${TMPDIR:-/tmp}/BENCH_check.XXXXXX.json")
trap 'rm -f "$SNAPSHOT"' EXIT

"$BUILD/tools/perf_snapshot" run --out "$SNAPSHOT"
"$BUILD/tools/perf_snapshot" check \
  --snapshot "$SNAPSHOT" \
  --baseline "$ROOT/bench/baseline.json" \
  "$@"
