#!/usr/bin/env sh
# Run the tagged perf benches and compare against the committed baseline.
#
#   tools/perf_check.sh <build-dir> [--strict]
#
# Without --strict this is a smoke check (schema + every baseline bench
# present; timings reported but advisory) — the mode CI runs, where
# shared-runner noise makes hard thresholds flaky. With --strict any
# bench exceeding its baseline wall_ms by more than its per-entry
# tolerance factor fails the script; use that on dedicated hardware.
#
# The snapshot is written to the repo root as BENCH_<stamp>.json (the
# perf_snapshot default) and kept after the run, so a failing check
# leaves the evidence next to bench/baseline.json instead of in a
# deleted mktemp file. Override with ETHSHARD_BENCH_OUT=PATH.
#
# Honours ETHSHARD_SCALE / ETHSHARD_SEED / ETHSHARD_PERF_REPS.
set -eu

BUILD=${1:?usage: tools/perf_check.sh <build-dir> [--strict]}
shift

ROOT=$(cd "$(dirname "$0")/.." && pwd)
STAMP=$(date -u +%Y%m%dT%H%M%SZ)
SNAPSHOT=${ETHSHARD_BENCH_OUT:-"$ROOT/BENCH_$STAMP.json"}

"$BUILD/tools/perf_snapshot" run --out "$SNAPSHOT"
"$BUILD/tools/perf_snapshot" check \
  --snapshot "$SNAPSHOT" \
  --baseline "$ROOT/bench/baseline.json" \
  "$@"
